// Package adl implements an application-level architecture description —
// the direction the paper's §6 names ("We are working to integrate
// certain Architecture Description Language into our DRCom"). An
// application document declares which components form the application
// and which outports feed which inports; the validator checks the
// declared architecture against the component descriptors *before*
// deployment, catching at design time what the DRCR would otherwise
// discover at run time.
//
//	<application name="vision" desc="camera pipeline">
//	  <member component="camera"/>
//	  <member component="roisel"/>
//	  <connection from="camera/frames" to="roisel/frames"/>
//	</application>
//
// DRCom transports are bound by port name at run time (§2.3), so a valid
// connection requires equal port names with compatible interface, type
// and size; the validator also demands that every inport is fed by
// exactly one connection and that the dependency graph is acyclic (the
// DRCR's fixed-point activation can never bring up a dependency cycle).
package adl

import (
	"encoding/xml"
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/descriptor"
)

// Endpoint names one port of one member, written "component/port".
type Endpoint struct {
	Component string
	Port      string
}

// String renders the endpoint in source form.
func (e Endpoint) String() string { return e.Component + "/" + e.Port }

// ParseEndpoint parses "component/port".
func ParseEndpoint(s string) (Endpoint, error) {
	comp, port, ok := strings.Cut(strings.TrimSpace(s), "/")
	if !ok || comp == "" || port == "" {
		return Endpoint{}, fmt.Errorf("adl: endpoint %q must be component/port", s)
	}
	return Endpoint{Component: comp, Port: port}, nil
}

// Connection wires an outport to an inport.
type Connection struct {
	From Endpoint // producer (outport)
	To   Endpoint // consumer (inport)
}

// Application is a parsed architecture description.
type Application struct {
	Name        string
	Description string
	Members     []string
	Connections []Connection
}

type xmlApplication struct {
	XMLName xml.Name `xml:"application"`
	Name    string   `xml:"name,attr"`
	Desc    string   `xml:"desc,attr"`
	Members []struct {
		Component string `xml:"component,attr"`
	} `xml:"member"`
	Connections []struct {
		From string `xml:"from,attr"`
		To   string `xml:"to,attr"`
	} `xml:"connection"`
}

// Parse reads an application document.
func Parse(src string) (*Application, error) {
	var xa xmlApplication
	if err := xml.Unmarshal([]byte(src), &xa); err != nil {
		return nil, fmt.Errorf("adl: XML: %w", err)
	}
	if strings.TrimSpace(xa.Name) == "" {
		return nil, errors.New("adl: application missing name")
	}
	app := &Application{Name: xa.Name, Description: xa.Desc}
	seen := map[string]bool{}
	for _, m := range xa.Members {
		name := strings.TrimSpace(m.Component)
		if name == "" {
			return nil, fmt.Errorf("adl: application %s: member without component", xa.Name)
		}
		if seen[name] {
			return nil, fmt.Errorf("adl: application %s: duplicate member %q", xa.Name, name)
		}
		seen[name] = true
		app.Members = append(app.Members, name)
	}
	if len(app.Members) == 0 {
		return nil, fmt.Errorf("adl: application %s has no members", xa.Name)
	}
	for _, c := range xa.Connections {
		from, err := ParseEndpoint(c.From)
		if err != nil {
			return nil, err
		}
		to, err := ParseEndpoint(c.To)
		if err != nil {
			return nil, err
		}
		app.Connections = append(app.Connections, Connection{From: from, To: to})
	}
	return app, nil
}

// Problem is one validation finding.
type Problem struct {
	// Fatal problems prevent deployment; non-fatal ones are advisory.
	Fatal   bool
	Message string
}

func fatalf(format string, args ...any) Problem {
	return Problem{Fatal: true, Message: fmt.Sprintf(format, args...)}
}

// Validate checks the architecture against the member component
// descriptors. It returns every problem found (fatal and advisory).
func Validate(app *Application, comps map[string]*descriptor.Component) []Problem {
	var problems []Problem
	members := map[string]*descriptor.Component{}
	for _, name := range app.Members {
		c, ok := comps[name]
		if !ok {
			problems = append(problems, fatalf("member %q has no component descriptor", name))
			continue
		}
		members[name] = c
	}

	findPort := func(e Endpoint, dir descriptor.Direction) (descriptor.Port, bool) {
		c, ok := members[e.Component]
		if !ok {
			return descriptor.Port{}, false
		}
		ports := c.OutPorts
		if dir == descriptor.In {
			ports = c.InPorts
		}
		for _, p := range ports {
			if p.Name == e.Port {
				return p, true
			}
		}
		return descriptor.Port{}, false
	}

	// Per-connection checks.
	fed := map[string][]Connection{} // inport endpoint -> feeding connections
	for _, conn := range app.Connections {
		if _, isMember := members[conn.From.Component]; !isMember {
			problems = append(problems, fatalf("connection %s -> %s: %q is not a member",
				conn.From, conn.To, conn.From.Component))
			continue
		}
		if _, isMember := members[conn.To.Component]; !isMember {
			problems = append(problems, fatalf("connection %s -> %s: %q is not a member",
				conn.From, conn.To, conn.To.Component))
			continue
		}
		out, ok := findPort(conn.From, descriptor.Out)
		if !ok {
			problems = append(problems, fatalf("connection %s -> %s: no such outport", conn.From, conn.To))
			continue
		}
		in, ok := findPort(conn.To, descriptor.In)
		if !ok {
			problems = append(problems, fatalf("connection %s -> %s: no such inport", conn.From, conn.To))
			continue
		}
		if !out.CanSatisfy(in) {
			problems = append(problems, fatalf(
				"connection %s -> %s: incompatible ports (out %s/%v×%d vs in %s/%v×%d; DRCom binds by equal name, transport, type, and sufficient size)",
				conn.From, conn.To,
				out.Interface, out.Type, out.Size, in.Interface, in.Type, in.Size))
			continue
		}
		fed[conn.To.String()] = append(fed[conn.To.String()], conn)
	}

	// Coverage: every inport of every member fed exactly once.
	for _, name := range sortedNames(members) {
		c := members[name]
		for _, in := range c.InPorts {
			key := Endpoint{Component: name, Port: in.Name}.String()
			switch n := len(fed[key]); {
			case n == 0:
				problems = append(problems, fatalf("inport %s is not fed by any connection", key))
			case n > 1:
				problems = append(problems, fatalf("inport %s is fed by %d connections; DRCom ports have one producer", key, n))
			}
		}
	}

	// The DRCR activates consumers only after their providers: a cycle in
	// the connection graph can never activate.
	if cyc := findCycle(app, members); len(cyc) > 0 {
		problems = append(problems, fatalf(
			"dependency cycle %s: the DRCR's activation order cannot resolve cyclic port dependencies",
			strings.Join(cyc, " -> ")))
	}
	return problems
}

func sortedNames(m map[string]*descriptor.Component) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// findCycle returns one dependency cycle (consumer -> provider edges), or
// nil.
func findCycle(app *Application, members map[string]*descriptor.Component) []string {
	deps := map[string][]string{} // consumer -> providers
	for _, conn := range app.Connections {
		if _, ok := members[conn.From.Component]; !ok {
			continue
		}
		if _, ok := members[conn.To.Component]; !ok {
			continue
		}
		deps[conn.To.Component] = append(deps[conn.To.Component], conn.From.Component)
	}
	const (
		unvisited = 0
		inStack   = 1
		done      = 2
	)
	state := map[string]int{}
	var stack []string
	var cycle []string
	var visit func(n string) bool
	visit = func(n string) bool {
		state[n] = inStack
		stack = append(stack, n)
		for _, p := range deps[n] {
			switch state[p] {
			case inStack:
				// Cut the stack at the first occurrence of p.
				for i, s := range stack {
					if s == p {
						cycle = append(append([]string{}, stack[i:]...), p)
						return true
					}
				}
			case unvisited:
				if visit(p) {
					return true
				}
			}
		}
		stack = stack[:len(stack)-1]
		state[n] = done
		return false
	}
	for _, name := range app.Members {
		if state[name] == unvisited {
			if visit(name) {
				return cycle
			}
		}
	}
	return nil
}

// ActivationOrder returns the members in a provider-before-consumer
// order. It fails on cycles or missing descriptors.
func ActivationOrder(app *Application, comps map[string]*descriptor.Component) ([]string, error) {
	for _, p := range Validate(app, comps) {
		if p.Fatal {
			return nil, fmt.Errorf("adl: application %s invalid: %s", app.Name, p.Message)
		}
	}
	deps := map[string]map[string]bool{}
	for _, m := range app.Members {
		deps[m] = map[string]bool{}
	}
	for _, conn := range app.Connections {
		deps[conn.To.Component][conn.From.Component] = true
	}
	var order []string
	placed := map[string]bool{}
	for len(order) < len(app.Members) {
		progressed := false
		for _, m := range app.Members {
			if placed[m] {
				continue
			}
			ready := true
			for p := range deps[m] {
				if !placed[p] {
					ready = false
					break
				}
			}
			if ready {
				order = append(order, m)
				placed[m] = true
				progressed = true
			}
		}
		if !progressed {
			return nil, fmt.Errorf("adl: application %s: no activation order (cycle)", app.Name)
		}
	}
	return order, nil
}

// Deploy validates the application and deploys its members to the DRCR in
// activation order.
func Deploy(d *core.DRCR, app *Application, comps map[string]*descriptor.Component) error {
	order, err := ActivationOrder(app, comps)
	if err != nil {
		return err
	}
	for _, name := range order {
		if err := d.Deploy(comps[name]); err != nil {
			return fmt.Errorf("adl: deploying member %s: %w", name, err)
		}
	}
	return nil
}
