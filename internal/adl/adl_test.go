package adl

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/descriptor"
	"repro/internal/osgi"
	"repro/internal/policy"
	"repro/internal/rtos"
)

const appXML = `<application name="vision" desc="camera pipeline">
  <member component="camera"/>
  <member component="roisel"/>
  <member component="panel"/>
  <connection from="camera/frames" to="roisel/frames"/>
  <connection from="roisel/roi" to="panel/roi"/>
</application>`

func comps(t *testing.T) map[string]*descriptor.Component {
	t.Helper()
	srcs := map[string]string{
		"camera": `<component name="camera" type="periodic" cpuusage="0.1">
		  <implementation bincode="x"/>
		  <periodictask frequence="100" runoncup="0" priority="2"/>
		  <outport name="frames" interface="RTAI.SHM" type="Byte" size="400"/>
		</component>`,
		"roisel": `<component name="roisel" type="periodic" cpuusage="0.05">
		  <implementation bincode="x"/>
		  <periodictask frequence="100" runoncup="0" priority="3"/>
		  <inport name="frames" interface="RTAI.SHM" type="Byte" size="400"/>
		  <outport name="roi" interface="RTAI.SHM" type="Integer" size="4"/>
		</component>`,
		"panel": `<component name="panel" type="periodic" cpuusage="0.01">
		  <implementation bincode="x"/>
		  <periodictask frequence="10" runoncup="0" priority="4"/>
		  <inport name="roi" interface="RTAI.SHM" type="Integer" size="4"/>
		</component>`,
	}
	out := map[string]*descriptor.Component{}
	for name, src := range srcs {
		c, err := descriptor.Parse(src)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out[name] = c
	}
	return out
}

func TestParseApplication(t *testing.T) {
	app, err := Parse(appXML)
	if err != nil {
		t.Fatal(err)
	}
	if app.Name != "vision" || len(app.Members) != 3 || len(app.Connections) != 2 {
		t.Fatalf("app = %+v", app)
	}
	if app.Connections[0].From.String() != "camera/frames" {
		t.Fatalf("conn0 = %v", app.Connections[0])
	}
}

func TestParseApplicationErrors(t *testing.T) {
	cases := []string{
		`<<<`,
		`<application/>`,          // no name
		`<application name="a"/>`, // no members
		`<application name="a"><member/></application>`,
		`<application name="a"><member component="x"/><member component="x"/></application>`,
		`<application name="a"><member component="x"/><connection from="bad" to="x/y"/></application>`,
		`<application name="a"><member component="x"/><connection from="x/y" to="/"/></application>`,
	}
	for i, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("case %d parsed", i)
		}
	}
}

func TestValidateCleanApplication(t *testing.T) {
	app, err := Parse(appXML)
	if err != nil {
		t.Fatal(err)
	}
	if problems := Validate(app, comps(t)); len(problems) != 0 {
		t.Fatalf("problems = %v", problems)
	}
}

func TestValidateFindings(t *testing.T) {
	base := comps(t)
	cases := []struct {
		name string
		app  string
		want string
	}{
		{
			"missing descriptor",
			`<application name="a"><member component="ghost"/></application>`,
			"no component descriptor",
		},
		{
			"non-member endpoint",
			`<application name="a"><member component="camera"/><connection from="ghost/p" to="camera/frames"/></application>`,
			"is not a member",
		},
		{
			"no such outport",
			`<application name="a"><member component="camera"/><member component="roisel"/><connection from="camera/nope" to="roisel/frames"/></application>`,
			"no such outport",
		},
		{
			"no such inport",
			`<application name="a"><member component="camera"/><member component="roisel"/><connection from="camera/frames" to="roisel/nope"/></application>`,
			"no such inport",
		},
		{
			"unfed inport",
			`<application name="a"><member component="camera"/><member component="roisel"/></application>`,
			"not fed",
		},
	}
	for _, c := range cases {
		app, err := Parse(c.app)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		problems := Validate(app, base)
		found := false
		for _, p := range problems {
			if strings.Contains(p.Message, c.want) {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: problems %v missing %q", c.name, problems, c.want)
		}
	}
}

func TestValidateIncompatiblePorts(t *testing.T) {
	base := comps(t)
	// A consumer demanding more than the producer offers.
	big, err := descriptor.Parse(`<component name="bigc" type="periodic" cpuusage="0.01">
	  <implementation bincode="x"/>
	  <periodictask frequence="10" runoncup="0" priority="5"/>
	  <inport name="frames" interface="RTAI.SHM" type="Byte" size="800"/>
	</component>`)
	if err != nil {
		t.Fatal(err)
	}
	base["bigc"] = big
	app, err := Parse(`<application name="a">
	  <member component="camera"/><member component="bigc"/>
	  <connection from="camera/frames" to="bigc/frames"/>
	</application>`)
	if err != nil {
		t.Fatal(err)
	}
	problems := Validate(app, base)
	found := false
	for _, p := range problems {
		if strings.Contains(p.Message, "incompatible") {
			found = true
		}
	}
	if !found {
		t.Fatalf("problems = %v", problems)
	}
}

func TestValidateDoubleFeed(t *testing.T) {
	base := comps(t)
	second, err := descriptor.Parse(`<component name="cam2" type="periodic" cpuusage="0.1">
	  <implementation bincode="x"/>
	  <periodictask frequence="100" runoncup="0" priority="2"/>
	  <outport name="frames" interface="RTAI.SHM" type="Byte" size="400"/>
	</component>`)
	if err != nil {
		t.Fatal(err)
	}
	base["cam2"] = second
	app, err := Parse(`<application name="a">
	  <member component="camera"/><member component="cam2"/><member component="roisel"/>
	  <connection from="camera/frames" to="roisel/frames"/>
	  <connection from="cam2/frames" to="roisel/frames"/>
	</application>`)
	if err != nil {
		t.Fatal(err)
	}
	problems := Validate(app, base)
	found := false
	for _, p := range problems {
		if strings.Contains(p.Message, "one producer") {
			found = true
		}
	}
	if !found {
		t.Fatalf("problems = %v", problems)
	}
}

func TestValidateCycle(t *testing.T) {
	mk := func(name, inPort, outPort string) *descriptor.Component {
		c, err := descriptor.Parse(`<component name="` + name + `" type="periodic" cpuusage="0.01">
		  <implementation bincode="x"/>
		  <periodictask frequence="10" runoncup="0" priority="5"/>
		  <inport name="` + inPort + `" interface="RTAI.SHM" type="Byte" size="4"/>
		  <outport name="` + outPort + `" interface="RTAI.SHM" type="Byte" size="4"/>
		</component>`)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	base := map[string]*descriptor.Component{
		"aa": mk("aa", "pb", "pa"),
		"bb": mk("bb", "pa", "pb"),
	}
	app, err := Parse(`<application name="loop">
	  <member component="aa"/><member component="bb"/>
	  <connection from="aa/pa" to="bb/pa"/>
	  <connection from="bb/pb" to="aa/pb"/>
	</application>`)
	if err != nil {
		t.Fatal(err)
	}
	problems := Validate(app, base)
	found := false
	for _, p := range problems {
		if strings.Contains(p.Message, "cycle") {
			found = true
		}
	}
	if !found {
		t.Fatalf("problems = %v", problems)
	}
	if _, err := ActivationOrder(app, base); err == nil {
		t.Fatal("cycle got an activation order")
	}
}

func TestActivationOrder(t *testing.T) {
	app, err := Parse(appXML)
	if err != nil {
		t.Fatal(err)
	}
	order, err := ActivationOrder(app, comps(t))
	if err != nil {
		t.Fatal(err)
	}
	pos := map[string]int{}
	for i, n := range order {
		pos[n] = i
	}
	if pos["camera"] > pos["roisel"] || pos["roisel"] > pos["panel"] {
		t.Fatalf("order = %v", order)
	}
}

func TestDeployApplication(t *testing.T) {
	fw := osgi.NewFramework()
	k := rtos.NewKernel(rtos.Config{Seed: 1})
	d, err := core.New(fw, k, core.Options{Internal: policy.Utilization{}})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	app, err := Parse(appXML)
	if err != nil {
		t.Fatal(err)
	}
	if err := Deploy(d, app, comps(t)); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"camera", "roisel", "panel"} {
		info, ok := d.Component(name)
		if !ok || info.State != core.Active {
			t.Fatalf("%s = %+v", name, info)
		}
	}
	// Deploying an invalid application fails before touching the DRCR.
	bad, err := Parse(`<application name="b"><member component="ghost"/></application>`)
	if err != nil {
		t.Fatal(err)
	}
	if err := Deploy(d, bad, comps(t)); err == nil {
		t.Fatal("invalid application deployed")
	}
}

func TestParseEndpoint(t *testing.T) {
	e, err := ParseEndpoint(" camera/frames ")
	if err != nil || e.Component != "camera" || e.Port != "frames" {
		t.Fatalf("e = %+v, %v", e, err)
	}
	for _, bad := range []string{"", "noslash", "/x", "x/"} {
		if _, err := ParseEndpoint(bad); err == nil {
			t.Errorf("ParseEndpoint(%q) succeeded", bad)
		}
	}
}
