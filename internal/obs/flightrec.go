// Flight recorder: the span ring already runs continuously and bounded;
// on a trigger — a contract violation, a supervisor escalation, a node
// loss, or an explicit trip (the cluster's split-brain guard) — the
// recorder freezes a window of spans around the trigger into a named
// dump that survives ring eviction, retrievable via console `flightrec`.
// A dump captures the FlightPre most recent spans up to and including
// the trigger immediately (copied out of the ring before eviction can
// touch them), then collects the next FlightPost spans as they are
// emitted. At most FlightMax dumps are retained per plane; once the cap
// is reached the trigger check is a pair of integer compares, keeping
// the emit path allocation-free in steady state.

package obs

import (
	"strconv"

	"repro/internal/sim"
)

// Flight-recorder defaults.
const (
	defaultFlightPre  = 48
	defaultFlightPost = 16
	defaultFlightMax  = 8
)

// FlightDump is one frozen pre/post-trigger span window.
type FlightDump struct {
	// Name identifies the dump: "<trigger-kind>-<component>-<id>" for
	// automatic triggers, the caller's name for explicit ones.
	Name string
	// At is the trigger instant (sim clock).
	At sim.Time
	// Trigger is the local ID of the span that tripped the recorder
	// (0 for explicit trips).
	Trigger SpanID
	// Spans is the window, oldest first: up to FlightPre spans ending at
	// the trigger, then up to FlightPost spans after it.
	Spans []Span
	// complete is set once the post-trigger window filled (or the run
	// ended and the dump was finalised short).
	complete bool
}

// pendingDump is a dump still collecting its post-trigger window.
type pendingDump struct {
	d      *FlightDump
	remain int
}

// flightTrigger reports whether a span kind trips the recorder.
func flightTrigger(k Kind) bool {
	return k == KindViolation || k == KindEscalate || k == KindNodeLoss
}

// noteFlight feeds one just-emitted span to the recorder: first into
// any pending post-trigger windows, then as a potential new trigger.
// Called from emit after the span is in the ring.
func (p *Plane) noteFlight(s Span) {
	for i := 0; i < len(p.frPending); {
		pd := &p.frPending[i]
		pd.d.Spans = append(pd.d.Spans, s)
		pd.remain--
		if pd.remain <= 0 {
			pd.d.complete = true
			p.frPending = append(p.frPending[:i], p.frPending[i+1:]...)
			continue
		}
		i++
	}
	if !flightTrigger(s.Kind) {
		return
	}
	if len(p.frDumps) >= p.frMax {
		return
	}
	name := s.Kind.String() + "-" + s.Component + "-" + strconv.FormatUint(uint64(s.ID), 10)
	p.openDump(name, s.At, s.ID)
}

// TriggerFlight trips the recorder explicitly — the split-brain guard
// and other management code use it. The pre-trigger window is frozen
// immediately; the post window collects the next emitted spans. A
// duplicate name or a full recorder is a no-op.
func (p *Plane) TriggerFlight(name string, at sim.Time) {
	if !p.enabled() || len(p.frDumps) >= p.frMax {
		return
	}
	for i := range p.frDumps {
		if p.frDumps[i].Name == name {
			return
		}
	}
	p.openDump(name, at, 0)
}

// openDump freezes the pre-trigger window and registers the post
// collector. trigger is the tripping span's ID (already in the ring),
// or 0 for explicit trips.
func (p *Plane) openDump(name string, at sim.Time, trigger SpanID) {
	d := &FlightDump{Name: name, At: at, Trigger: trigger}
	lo := SpanID(1)
	if p.next >= SpanID(p.frPre) {
		lo = p.next - SpanID(p.frPre) + 1
	}
	d.Spans = make([]Span, 0, p.frPre+p.frPost)
	for _, s := range p.SpansSince(lo) {
		d.Spans = append(d.Spans, s)
	}
	p.frDumps = append(p.frDumps, d)
	if p.frPost > 0 {
		p.frPending = append(p.frPending, pendingDump{d: d, remain: p.frPost})
	} else {
		d.complete = true
	}
}

// FlightDumps returns the retained dumps, oldest first. Dumps are deep
// copies: an open dump keeps appending into its own window after this
// returns, so handing out the live slice would let those appends write
// under the caller.
func (p *Plane) FlightDumps() []FlightDump {
	if p == nil {
		return nil
	}
	out := make([]FlightDump, len(p.frDumps))
	for i, d := range p.frDumps {
		out[i] = copyDump(d)
	}
	return out
}

// FlightDump looks a dump up by name, returning a deep copy.
func (p *Plane) FlightDump(name string) (FlightDump, bool) {
	if p == nil {
		return FlightDump{}, false
	}
	for _, d := range p.frDumps {
		if d.Name == name {
			return copyDump(d), true
		}
	}
	return FlightDump{}, false
}

func copyDump(d *FlightDump) FlightDump {
	out := *d
	out.Spans = append([]Span(nil), d.Spans...)
	return out
}

// Complete reports whether the dump's post-trigger window has filled.
func (d FlightDump) Complete() bool { return d.complete }
