package obs

import (
	"testing"
	"time"

	"repro/internal/rtos"
)

// runShardedTickers drives a kernel with one periodic task per CPU and
// returns the bound plane.
func runShardedTickers(t *testing.T, shards int, funnel bool, runFor time.Duration) *Plane {
	t.Helper()
	k := rtos.NewKernel(rtos.Config{Seed: 1, NumCPUs: 4, Shards: shards})
	p := NewPlane(Options{Level: Full, SchedFunnel: funnel})
	p.BindKernel(k)
	for cpu := 0; cpu < 4; cpu++ {
		task, err := k.CreateTask(rtos.TaskSpec{
			Name: "tk" + string(rune('a'+cpu)), Type: rtos.Periodic,
			Period:   time.Duration(1+cpu) * time.Millisecond,
			ExecTime: 30 * time.Microsecond, CPU: cpu,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := task.Start(); err != nil {
			t.Fatal(err)
		}
	}
	if err := k.Run(runFor); err != nil {
		t.Fatal(err)
	}
	return p
}

// Per-shard emission is the funnel bridge, parallelised: on the same
// kernel config both paths must produce byte-identical digests — the
// full one (span IDs included; per-shard staging must not perturb ID
// assignment) and the stream one — at shard counts 1, 2 and 4.
func TestShardedEmissionDigestsMatchFunnel(t *testing.T) {
	ref := runShardedTickers(t, 0, false, 100*time.Millisecond)
	refDigest, refStream := ref.Digest(), ref.StreamDigest()
	if ref.Snapshot().Sched.Events == 0 {
		t.Fatal("reference run emitted no sched spans")
	}
	for _, shards := range []int{1, 2, 4} {
		for _, funnel := range []bool{true, false} {
			p := runShardedTickers(t, shards, funnel, 100*time.Millisecond)
			if d := p.Digest(); d != refDigest {
				t.Errorf("shards=%d funnel=%v: digest %s != sequential %s", shards, funnel, d, refDigest)
			}
			if s := p.StreamDigest(); s != refStream {
				t.Errorf("shards=%d funnel=%v: stream digest %s != sequential %s", shards, funnel, s, refStream)
			}
		}
	}
}

// The per-shard staging buffers must be allocation-free in steady
// state, like the funnel bridge they replace.
func TestShardedEmissionAllocFree(t *testing.T) {
	k := rtos.NewKernel(rtos.Config{Seed: 1, NumCPUs: 4, Shards: 4})
	p := NewPlane(Options{Level: Full})
	p.BindKernel(k)
	for cpu := 0; cpu < 4; cpu++ {
		task, err := k.CreateTask(rtos.TaskSpec{
			Name: "tk" + string(rune('a'+cpu)), Type: rtos.Periodic,
			Period: time.Millisecond, ExecTime: 30 * time.Microsecond, CPU: cpu,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := task.Start(); err != nil {
			t.Fatal(err)
		}
	}
	// Warm up: grow the staging buffers and the merge scratch to their
	// steady-state capacity.
	if err := k.Run(200 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	before := p.Snapshot().Sched.Events
	if n := testing.AllocsPerRun(50, func() {
		if err := k.Run(time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}); n > 0.001 {
		t.Errorf("sharded emission allocates %.3f per ms of sim time", n)
	}
	if after := p.Snapshot().Sched.Events; after <= before {
		t.Fatal("sharded emitters recorded no sched spans during the measured runs")
	}
}
