package obs

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"time"
)

// Snapshot is the stable-ordered metrics export of the plane: every
// slice order is committed — struct fields encode in declaration
// order, per-name slices (CPUs, Components, Mailboxes) sort by name,
// and per-kind counters (SpanKinds) and latency histograms (Latency)
// list in their canonical enum order, never map-iteration order — so
// two snapshots of the same state encode to byte-identical JSON. That
// stability is part of the API: exporters and the committed bench
// reports diff snapshots textually. It merges the plane's own counters
// with the bound kernel's task, CPU, and mailbox statistics.
type Snapshot struct {
	// AtNS is the simulated-clock timestamp in nanoseconds.
	AtNS int64 `json:"at_ns"`
	// Level is the sampling level at snapshot time.
	Level string `json:"level"`
	// Node is the plane's federated identity ("" single-node).
	Node string `json:"node,omitempty"`
	// SpansEmitted is the lifetime span count; SpansRetained is how many
	// are still in the ring.
	SpansEmitted  uint64 `json:"spans_emitted"`
	SpansRetained int    `json:"spans_retained"`
	// Digest / StreamDigest are the running trace digests.
	Digest       string `json:"digest"`
	StreamDigest string `json:"stream_digest"`

	Resolve   ResolveStats   `json:"resolve"`
	Plan      PlanStats      `json:"plan"`
	Lifecycle LifecycleStats `json:"lifecycle"`
	Contract  ContractStats  `json:"contract"`
	Degrade   DegradeStats   `json:"degrade"`
	Supervise SuperviseStats `json:"supervise"`
	Cluster   ClusterStats   `json:"cluster"`
	Fault     FaultStats     `json:"fault"`
	Sched     SchedStats     `json:"sched"`
	// SpanKinds lists the non-zero per-kind span counters in the
	// committed canonical kind order (the Kind enum declaration order,
	// KindDeploy first) — never map-iteration order.
	SpanKinds []KindCount `json:"span_kinds,omitempty"`
	// Latency lists the non-empty latency histograms (p50/p95/p99 as
	// deterministic bucket upper bounds) in the committed canonical
	// LatencyKind order. Wall-clock values are machine-dependent; they
	// never enter any digest.
	Latency []LatencyStat `json:"latency,omitempty"`
	// FlightDumps is the number of retained flight-recorder dumps.
	FlightDumps int             `json:"flight_dumps,omitempty"`
	CPUs        []CPUStat       `json:"cpus,omitempty"`
	Components  []ComponentStat `json:"components,omitempty"`
	Mailboxes   []MailboxStat   `json:"mailboxes,omitempty"`
}

// KindCount is one span kind's lifetime emission count.
type KindCount struct {
	Kind  string `json:"kind"`
	Count uint64 `json:"count"`
}

// ResolveStats describe the incremental resolve engine.
type ResolveStats struct {
	// Drains counts Resolve entries that ran the worklist engine.
	Drains uint64 `json:"drains"`
	// Rounds counts resolution rounds (staged-cursor passes).
	Rounds uint64 `json:"rounds"`
	// MaxWorklistDepth is the largest staged candidate count seen.
	MaxWorklistDepth int64 `json:"max_worklist_depth"`
	// DepthSamples / DepthMean / DepthMax summarise the non-empty-round
	// depth series (sample count capped, extremes exact).
	DepthSamples int     `json:"depth_samples"`
	DepthMean    float64 `json:"depth_mean"`
	DepthMax     int64   `json:"depth_max"`
}

// PlanStats count composition-plan pipeline activity (zero when every
// deploy ran the per-descriptor event path).
type PlanStats struct {
	// Compiles counts plan compilations; CacheHits deploys answered from
	// the compiled-plan cache without recompiling.
	Compiles  uint64 `json:"compiles"`
	CacheHits uint64 `json:"cache_hits"`
	// Applies counts whole-bundle fast-path applies; Fallbacks deploys
	// that compiled but ran the event path anyway.
	Applies   uint64 `json:"applies"`
	Fallbacks uint64 `json:"fallbacks"`
}

// LifecycleStats count Figure 1 decisions.
type LifecycleStats struct {
	Deploys       uint64 `json:"deploys"`
	Transitions   uint64 `json:"transitions"`
	Activations   uint64 `json:"activations"`
	Deactivations uint64 `json:"deactivations"`
	Denials       uint64 `json:"denials"`
}

// ContractStats count contract-guard decisions.
type ContractStats struct {
	Violations  uint64 `json:"violations"`
	Revocations uint64 `json:"revocations"`
	Restores    uint64 `json:"restores"`
	Quarantines uint64 `json:"quarantines"`
}

// DegradeStats count service-mode transitions.
type DegradeStats struct {
	Downgrades uint64 `json:"downgrades"`
	Upgrades   uint64 `json:"upgrades"`
}

// SuperviseStats count restart-supervisor decisions.
type SuperviseStats struct {
	Restarts    uint64 `json:"restarts"`
	Escalations uint64 `json:"escalations"`
}

// ClusterStats count federation decisions (zero on single-node planes).
type ClusterStats struct {
	Sends      uint64 `json:"sends"`
	Recvs      uint64 `json:"recvs"`
	Migrations uint64 `json:"migrations"`
	Partitions uint64 `json:"partitions"`
	Heals      uint64 `json:"heals"`
	Placements uint64 `json:"placements"`
	NodeLosses uint64 `json:"node_losses"`
}

// FaultStats count injector activity.
type FaultStats struct {
	Injections uint64 `json:"injections"`
	Clears     uint64 `json:"clears"`
	Reapplies  uint64 `json:"reapplies"`
}

// SchedStats count bridged scheduler trace events (Full level only).
type SchedStats struct {
	Events uint64 `json:"events"`
}

// CPUStat is one CPU's declared admission load and consumed busy time.
type CPUStat struct {
	CPU int `json:"cpu"`
	// DeclaredLoad is the DRCR admission accumulator (fraction of 1.0).
	DeclaredLoad float64 `json:"declared_load"`
	// BusyNS is the kernel's consumed busy time in nanoseconds.
	BusyNS int64 `json:"busy_ns"`
}

// ComponentStat merges per-component plane counters with the kernel's
// live task counters for the component's task (if it has one).
type ComponentStat struct {
	Name        string `json:"name"`
	Transitions uint64 `json:"transitions"`
	Denials     uint64 `json:"denials"`
	Revocations uint64 `json:"revocations"`
	Violations  uint64 `json:"violations"`
	// Task counters: zero unless a kernel task with this name exists.
	Jobs           uint64 `json:"jobs"`
	DeadlineMisses uint64 `json:"deadline_misses"`
	Skips          uint64 `json:"skips"`
	ConsumedNS     int64  `json:"consumed_ns"`
}

// MailboxStat is one mailbox's transfer counters; drops are the
// backpressure signal.
type MailboxStat struct {
	Name     string `json:"name"`
	Sent     uint64 `json:"sent"`
	Received uint64 `json:"received"`
	Dropped  uint64 `json:"dropped"`
}

// Snapshot assembles the current metric state. Safe on a nil plane
// (returns an all-zero snapshot with level "off").
func (p *Plane) Snapshot() Snapshot {
	if p == nil {
		return Snapshot{Level: Off.String()}
	}
	s := Snapshot{
		Level:         p.level.String(),
		SpansEmitted:  uint64(p.next),
		SpansRetained: len(p.SpansSince(1)),
		Digest:        p.Digest(),
		StreamDigest:  p.StreamDigest(),
		Resolve: ResolveStats{
			Drains:           p.c.resolveDrains,
			Rounds:           p.c.resolveRounds,
			MaxWorklistDepth: p.c.maxDepth,
			DepthSamples:     p.depth.Len(),
			DepthMean:        p.depth.Mean(),
			DepthMax:         p.depth.Max(),
		},
		Plan: PlanStats{
			Compiles:  p.c.planCompiles,
			CacheHits: p.c.planCacheHits,
			Applies:   p.c.planApplies,
			Fallbacks: p.c.planFallbacks,
		},
		Lifecycle: LifecycleStats{
			Deploys:       p.c.deploys,
			Transitions:   p.c.transitions,
			Activations:   p.c.activations,
			Deactivations: p.c.deactivations,
			Denials:       p.c.denials,
		},
		Contract: ContractStats{
			Violations:  p.c.violations,
			Revocations: p.c.revocations,
			Restores:    p.c.restores,
			Quarantines: p.c.quarantines,
		},
		Degrade: DegradeStats{
			Downgrades: p.c.downgrades,
			Upgrades:   p.c.upgrades,
		},
		Supervise: SuperviseStats{
			Restarts:    p.c.restarts,
			Escalations: p.c.escalations,
		},
		Cluster: ClusterStats{
			Sends:      p.c.sends,
			Recvs:      p.c.recvs,
			Migrations: p.c.migrations,
			Partitions: p.c.partitions,
			Heals:      p.c.heals,
			Placements: p.c.placements,
			NodeLosses: p.c.nodeLosses,
		},
		Fault: FaultStats{
			Injections: p.c.faultInjects,
			Clears:     p.c.faultClears,
			Reapplies:  p.c.faultReapply,
		},
		Sched: SchedStats{Events: p.c.schedEvents},
	}
	s.Node = p.node
	for k := 1; k < kindCount; k++ {
		if p.perKind[k] > 0 {
			s.SpanKinds = append(s.SpanKinds, KindCount{Kind: Kind(k).String(), Count: p.perKind[k]})
		}
	}
	s.Latency = p.LatencyStats()
	s.FlightDumps = len(p.frDumps)

	var load []float64
	if p.loadFn != nil {
		load = p.loadFn()
	}
	if p.kernel != nil {
		s.AtNS = int64(p.kernel.Now())
		for cpu := 0; cpu < p.kernel.NumCPUs(); cpu++ {
			st := CPUStat{CPU: cpu}
			if cpu < len(load) {
				st.DeclaredLoad = load[cpu]
			}
			if busy, err := p.kernel.BusyTime(cpu); err == nil {
				st.BusyNS = int64(busy)
			}
			s.CPUs = append(s.CPUs, st)
		}
	} else {
		for cpu, l := range load {
			s.CPUs = append(s.CPUs, CPUStat{CPU: cpu, DeclaredLoad: l})
		}
	}

	names := make([]string, 0, len(p.perComp))
	for name := range p.perComp {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		cc := p.perComp[name]
		st := ComponentStat{
			Name:        name,
			Transitions: cc.transitions,
			Denials:     cc.denials,
			Revocations: cc.revocations,
			Violations:  cc.violations,
		}
		if p.kernel != nil {
			if task, ok := p.kernel.Task(name); ok {
				m := task.Metrics()
				st.Jobs, st.DeadlineMisses, st.Skips = m.Jobs, m.Misses, m.Skips
				st.ConsumedNS = int64(m.Consumed)
			}
		}
		s.Components = append(s.Components, st)
	}

	if p.kernel != nil {
		_, boxes := p.kernel.IPC().Names()
		sort.Strings(boxes)
		for _, name := range boxes {
			mb, err := p.kernel.IPC().Mailbox(name)
			if err != nil {
				continue
			}
			sent, received, dropped := mb.Stats()
			s.Mailboxes = append(s.Mailboxes, MailboxStat{
				Name: name, Sent: sent, Received: received, Dropped: dropped,
			})
		}
	}
	return s
}

// Encode renders the snapshot as indented JSON with a trailing newline,
// the same convention as the committed bench reports.
func (s Snapshot) Encode() ([]byte, error) {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// Format renders the snapshot as the console `metrics` table.
func (s Snapshot) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "observability @ %v (level %s)\n", time.Duration(s.AtNS), s.Level)
	fmt.Fprintf(&b, "  spans:     %d emitted, %d retained\n", s.SpansEmitted, s.SpansRetained)
	fmt.Fprintf(&b, "  resolve:   %d drains, %d rounds, max depth %d (mean %.1f over %d non-empty)\n",
		s.Resolve.Drains, s.Resolve.Rounds, s.Resolve.MaxWorklistDepth,
		s.Resolve.DepthMean, s.Resolve.DepthSamples)
	if s.Plan.Compiles > 0 || s.Plan.CacheHits > 0 || s.Plan.Applies > 0 || s.Plan.Fallbacks > 0 {
		fmt.Fprintf(&b, "  plans:     %d compiled, %d cache hits, %d applied, %d fallbacks\n",
			s.Plan.Compiles, s.Plan.CacheHits, s.Plan.Applies, s.Plan.Fallbacks)
	}
	fmt.Fprintf(&b, "  lifecycle: %d deploys, %d transitions, %d act, %d deact, %d denied\n",
		s.Lifecycle.Deploys, s.Lifecycle.Transitions, s.Lifecycle.Activations,
		s.Lifecycle.Deactivations, s.Lifecycle.Denials)
	fmt.Fprintf(&b, "  contract:  %d violations, %d revocations, %d restores, %d quarantines\n",
		s.Contract.Violations, s.Contract.Revocations, s.Contract.Restores, s.Contract.Quarantines)
	if s.Degrade.Downgrades > 0 || s.Degrade.Upgrades > 0 {
		fmt.Fprintf(&b, "  degrade:   %d downgrades, %d upgrades\n",
			s.Degrade.Downgrades, s.Degrade.Upgrades)
	}
	if s.Supervise.Restarts > 0 || s.Supervise.Escalations > 0 {
		fmt.Fprintf(&b, "  supervise: %d restarts, %d escalations\n",
			s.Supervise.Restarts, s.Supervise.Escalations)
	}
	if s.Cluster.Sends > 0 || s.Cluster.Recvs > 0 || s.Cluster.Partitions > 0 {
		fmt.Fprintf(&b, "  cluster:   %d sends, %d recvs, %d migrations, %d partitions, %d heals, %d placements, %d node losses\n",
			s.Cluster.Sends, s.Cluster.Recvs, s.Cluster.Migrations,
			s.Cluster.Partitions, s.Cluster.Heals, s.Cluster.Placements, s.Cluster.NodeLosses)
	}
	fmt.Fprintf(&b, "  fault:     %d injected, %d cleared, %d reapplied\n",
		s.Fault.Injections, s.Fault.Clears, s.Fault.Reapplies)
	if s.Sched.Events > 0 {
		fmt.Fprintf(&b, "  sched:     %d bridged events\n", s.Sched.Events)
	}
	for _, l := range s.Latency {
		fmt.Fprintf(&b, "  lat %-18s n=%-6d p50 %v p95 %v p99 %v max %v\n",
			l.Name, l.Count, time.Duration(l.P50NS), time.Duration(l.P95NS),
			time.Duration(l.P99NS), time.Duration(l.MaxNS))
	}
	if s.FlightDumps > 0 {
		fmt.Fprintf(&b, "  flightrec: %d dumps\n", s.FlightDumps)
	}
	for _, c := range s.CPUs {
		fmt.Fprintf(&b, "  cpu%d:      %3.0f%% declared, busy %v\n",
			c.CPU, c.DeclaredLoad*100, time.Duration(c.BusyNS))
	}
	if len(s.Components) > 0 {
		fmt.Fprintf(&b, "  %-12s %6s %6s %6s %6s %8s %7s\n",
			"component", "trans", "deny", "revoke", "viol", "jobs", "misses")
		for _, c := range s.Components {
			fmt.Fprintf(&b, "  %-12s %6d %6d %6d %6d %8d %7d\n",
				c.Name, c.Transitions, c.Denials, c.Revocations, c.Violations,
				c.Jobs, c.DeadlineMisses)
		}
	}
	for _, m := range s.Mailboxes {
		fmt.Fprintf(&b, "  mbx %-10s sent %d recv %d dropped %d\n",
			m.Name, m.Sent, m.Received, m.Dropped)
	}
	return b.String()
}
