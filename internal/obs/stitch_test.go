package obs

import (
	"strings"
	"testing"
	"time"
)

// A two-plane federation: the control plane sends a provision, the node
// plane records the delivery effects under an ambient remote cause, and
// StitchWhy walks the chain back across the hop.
func buildStitchedPair() (ctrl, node *Plane) {
	ctrl = NewPlane(Options{Node: "cluster"})
	node = NewPlane(Options{Node: "n1"})
	send := ctrl.Send(at(0), "calc", "n0", "n1", "provision on feed", 0)
	recv := ctrl.Recv(at(time.Millisecond), "calc", "n0", "n1", "provision on feed", send)
	node.SetRemoteCause(Ref{Node: "cluster", ID: recv})
	dep := node.Deploy(at(time.Millisecond), "calc", "UNSATISFIED", "provisioned")
	node.Transition(at(2*time.Millisecond), "calc", "UNSATISFIED", "ACTIVE", "admitted", dep)
	node.ClearRemoteCause()
	return ctrl, node
}

func TestStitchWhyCrossesNodeBoundary(t *testing.T) {
	ctrl, node := buildStitchedPair()
	planes := map[string]*Plane{"cluster": ctrl, "n1": node}
	chain := StitchWhy(planes, "n1", "calc")
	if len(chain) != 4 {
		t.Fatalf("stitched chain has %d hops, want 4: %+v", len(chain), chain)
	}
	wantNodes := []string{"n1", "n1", "cluster", "cluster"}
	wantKinds := []Kind{KindTransition, KindDeploy, KindRecv, KindSend}
	for i, s := range chain {
		if s.Node != wantNodes[i] || s.Span.Kind != wantKinds[i] {
			t.Fatalf("hop %d = %s/%v, want %s/%v", i, s.Node, s.Span.Kind, wantNodes[i], wantKinds[i])
		}
	}
}

func TestStitchWhyWithoutRemoteLinkStaysLocal(t *testing.T) {
	ctrl, node := buildStitchedPair()
	// A span emitted outside any remote-cause scope must not stitch.
	node.Deploy(at(5*time.Millisecond), "disp", "UNSATISFIED", "local deploy")
	chain := StitchWhy(map[string]*Plane{"cluster": ctrl, "n1": node}, "n1", "disp")
	if len(chain) != 1 || chain[0].Node != "n1" {
		t.Fatalf("local chain crossed a boundary: %+v", chain)
	}
	// Unknown start plane and unknown component both come back empty.
	if got := StitchWhy(map[string]*Plane{"n1": node}, "n9", "calc"); got != nil {
		t.Fatalf("unknown plane produced a chain: %+v", got)
	}
	if got := StitchWhy(map[string]*Plane{"n1": node}, "n1", "ghost"); got != nil {
		t.Fatalf("unknown component produced a chain: %+v", got)
	}
}

func TestStitchDigestDeterministicAndIDFree(t *testing.T) {
	ctrl1, node1 := buildStitchedPair()
	d1 := StitchDigest(map[string]*Plane{"cluster": ctrl1, "n1": node1},
		[]StitchRoot{{Node: "n1", Component: "calc"}})

	// Same history, but the second federation burns span IDs first: the
	// render is ID-free, so the digest must not move.
	ctrl2 := NewPlane(Options{Node: "cluster"})
	node2 := NewPlane(Options{Node: "n1"})
	for i := 0; i < 17; i++ {
		ctrl2.ResolveRound(at(0), 1, 1) // consumes IDs, digest-excluded
	}
	send := ctrl2.Send(at(0), "calc", "n0", "n1", "provision on feed", 0)
	recv := ctrl2.Recv(at(time.Millisecond), "calc", "n0", "n1", "provision on feed", send)
	node2.SetRemoteCause(Ref{Node: "cluster", ID: recv})
	dep := node2.Deploy(at(time.Millisecond), "calc", "UNSATISFIED", "provisioned")
	node2.Transition(at(2*time.Millisecond), "calc", "UNSATISFIED", "ACTIVE", "admitted", dep)
	node2.ClearRemoteCause()
	d2 := StitchDigest(map[string]*Plane{"cluster": ctrl2, "n1": node2},
		[]StitchRoot{{Node: "n1", Component: "calc"}})
	if d1 != d2 {
		t.Fatalf("ID offsets moved the stitched digest:\n%s\n%s", d1, d2)
	}

	// A broken remote link must move it.
	ctrl3, node3 := buildStitchedPair()
	s, _ := node3.Last("calc")
	_ = s
	node3.Deploy(at(time.Millisecond), "other", "UNSATISFIED", "noise")
	d3 := StitchDigest(map[string]*Plane{"cluster": ctrl3, "n1": node3},
		[]StitchRoot{{Node: "n1", Component: "calc"}})
	if d3 != d1 {
		t.Fatalf("unrelated noise moved the stitched digest")
	}
	dMissing := StitchDigest(map[string]*Plane{"n1": node3},
		[]StitchRoot{{Node: "n1", Component: "calc"}})
	if dMissing == d1 {
		t.Fatal("dropping the control plane did not move the stitched digest")
	}
}

func TestRemoteCauseScopingAndPruning(t *testing.T) {
	p := NewPlane(Options{Node: "n0", Capacity: 8})
	p.SetRemoteCause(Ref{Node: "cluster", ID: 7})
	id := p.Deploy(at(0), "calc", "UNSATISFIED", "")
	if r, ok := p.RemoteCause(id); !ok || r.Node != "cluster" || r.ID != 7 {
		t.Fatalf("RemoteCause(%d) = %+v, %v", id, r, ok)
	}
	// A span with a local cause must not be remote-linked.
	id2 := p.Transition(at(0), "calc", "A", "B", "", id)
	if _, ok := p.RemoteCause(id2); ok {
		t.Fatal("span with a local cause was remote-linked")
	}
	p.ClearRemoteCause()
	id3 := p.Deploy(at(0), "disp", "UNSATISFIED", "")
	if _, ok := p.RemoteCause(id3); ok {
		t.Fatal("remote cause leaked past ClearRemoteCause")
	}
	// The side table prunes entries for long-evicted spans.
	p.SetRemoteCause(Ref{Node: "cluster", ID: 9})
	for i := 0; i < 200; i++ {
		p.Deploy(at(0), "x", "U", "")
	}
	p.ClearRemoteCause()
	if n := len(p.remote); n > 2*8 {
		t.Fatalf("remote table grew unbounded: %d entries for an 8-span ring", n)
	}
	if _, ok := p.RemoteCause(id); ok {
		t.Fatal("evicted span still remote-linked after pruning")
	}
}

func TestStitchWhyBoundsHops(t *testing.T) {
	// Two planes whose remote links point at each other would loop
	// forever without the hop bound.
	a := NewPlane(Options{Node: "a"})
	b := NewPlane(Options{Node: "b"})
	ida := a.Deploy(at(0), "calc", "U", "")
	idb := b.Deploy(at(0), "calc", "U", "")
	a.LinkRemote(ida, Ref{Node: "b", ID: idb})
	b.LinkRemote(idb, Ref{Node: "a", ID: ida})
	chain := StitchWhy(map[string]*Plane{"a": a, "b": b}, "a", "calc")
	if len(chain) == 0 || len(chain) > stitchMax {
		t.Fatalf("cyclic stitch produced %d hops (max %d)", len(chain), stitchMax)
	}
}

func TestStitchDigestRendersHeaderPerRoot(t *testing.T) {
	ctrl, node := buildStitchedPair()
	planes := map[string]*Plane{"cluster": ctrl, "n1": node}
	d1 := StitchDigest(planes, []StitchRoot{{Node: "n1", Component: "calc"}})
	d2 := StitchDigest(planes, []StitchRoot{
		{Node: "n1", Component: "calc"}, {Node: "n1", Component: "calc"},
	})
	if d1 == d2 {
		t.Fatal("root multiplicity not reflected in the stitched digest")
	}
	if len(d1) != 64 || strings.ToLower(d1) != d1 {
		t.Fatalf("stitched digest is not lowercase hex sha256: %q", d1)
	}
}
