package obs

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/sim"
)

func at(d time.Duration) sim.Time { return sim.Time(d) }

func TestLevelParseRoundTrip(t *testing.T) {
	for _, l := range []Level{Off, Sampled, Full} {
		got, err := ParseLevel(l.String())
		if err != nil {
			t.Fatalf("ParseLevel(%q): %v", l.String(), err)
		}
		if got != l {
			t.Fatalf("ParseLevel(%q) = %v, want %v", l.String(), got, l)
		}
	}
	if _, err := ParseLevel("verbose"); err == nil {
		t.Fatal("ParseLevel accepted an unknown level")
	}
	if Level(0) != Sampled {
		t.Fatal("the zero level must be Sampled (the default)")
	}
}

func TestEmitAssignsDenseIDs(t *testing.T) {
	p := NewPlane(Options{})
	id1 := p.Deploy(at(0), "calc", "UNSATISFIED", "deployed")
	id2 := p.Transition(at(time.Millisecond), "calc", "UNSATISFIED", "SATISFIED", "resolved", 0)
	id3 := p.Transition(at(time.Millisecond), "calc", "SATISFIED", "ACTIVE", "admitted", id2)
	if id1 != 1 || id2 != 2 || id3 != 3 {
		t.Fatalf("ids not dense: %d %d %d", id1, id2, id3)
	}
	if p.Emitted() != 3 || p.NextID() != 4 {
		t.Fatalf("Emitted=%d NextID=%d", p.Emitted(), p.NextID())
	}
	s, ok := p.Span(id3)
	if !ok || s.Cause != id2 || s.From != "SATISFIED" || s.To != "ACTIVE" {
		t.Fatalf("Span(%d) = %+v, %v", id3, s, ok)
	}
}

func TestOffLevelEmitsNothing(t *testing.T) {
	p := NewPlane(Options{Level: Off})
	if id := p.Deploy(at(0), "calc", "UNSATISFIED", ""); id != 0 {
		t.Fatalf("Off plane emitted span %d", id)
	}
	if id := p.Violation(at(0), "calc", "BudgetOverrun", "", 0); id != 0 {
		t.Fatalf("Off plane emitted span %d", id)
	}
	p.NoteDrain()
	p.ResolveRound(at(0), 3, 2)
	if p.Emitted() != 0 {
		t.Fatalf("Off plane retained %d spans", p.Emitted())
	}
	snap := p.Snapshot()
	if snap.Resolve.Drains != 0 || snap.Resolve.Rounds != 0 {
		t.Fatalf("Off plane counted resolve work: %+v", snap.Resolve)
	}
	// A nil plane is equally inert — every emit helper is nil-safe.
	var nilPlane *Plane
	if id := nilPlane.Deploy(at(0), "x", "", ""); id != 0 {
		t.Fatal("nil plane emitted")
	}
	nilPlane.PushCause(1)
	nilPlane.PopCause()
	if nilPlane.Level() != Off {
		t.Fatal("nil plane level must read Off")
	}
}

func TestRingEviction(t *testing.T) {
	const cap = 8
	p := NewPlane(Options{Capacity: cap})
	for i := 0; i < 20; i++ {
		p.Deploy(at(time.Duration(i)*time.Millisecond), "c", "UNSATISFIED", "")
	}
	if _, ok := p.Span(1); ok {
		t.Fatal("span 1 should be evicted")
	}
	if _, ok := p.Span(12); ok {
		t.Fatal("span 12 should be evicted (20-8=12 is the eviction edge)")
	}
	if _, ok := p.Span(13); !ok {
		t.Fatal("span 13 should be retained")
	}
	spans := p.Spans()
	if len(spans) != cap {
		t.Fatalf("Spans() = %d, want %d", len(spans), cap)
	}
	if spans[0].ID != 13 || spans[cap-1].ID != 20 {
		t.Fatalf("retained window [%d..%d], want [13..20]", spans[0].ID, spans[cap-1].ID)
	}
	for i := 1; i < len(spans); i++ {
		if spans[i].ID != spans[i-1].ID+1 {
			t.Fatalf("Spans() not ordered oldest-first: %d after %d", spans[i].ID, spans[i-1].ID)
		}
	}
	if got := p.SpansSince(18); len(got) != 3 || got[0].ID != 18 {
		t.Fatalf("SpansSince(18) = %v", got)
	}
	if got := p.SpansSince(21); got != nil {
		t.Fatalf("SpansSince past the head = %v", got)
	}
}

func TestAmbientCauseStack(t *testing.T) {
	p := NewPlane(Options{})
	root := p.Violation(at(0), "calc", "BudgetOverrun", "3x budget", 0)
	p.PushCause(root)
	rev := p.Revoke(at(0), "calc", "violation")
	p.PushCause(0) // shadow: an unrelated scope must not inherit root
	orphan := p.Deploy(at(0), "other", "UNSATISFIED", "")
	p.PopCause()
	quar := p.Quarantine(at(0), "calc", 4, 0)
	p.PopCause()
	after := p.Restore(at(time.Millisecond), "calc", "")

	want := map[SpanID]SpanID{rev: root, orphan: 0, quar: root, after: 0}
	for id, cause := range want {
		s, ok := p.Span(id)
		if !ok || s.Cause != cause {
			t.Fatalf("span %d cause = %d (ok=%v), want %d", id, s.Cause, ok, cause)
		}
	}

	// Explicit causes beat the ambient one.
	p.PushCause(rev)
	exp := p.Transition(at(0), "disp", "ACTIVE", "UNSATISFIED", "cascade", quar)
	p.PopCause()
	if s, _ := p.Span(exp); s.Cause != quar {
		t.Fatalf("explicit cause overridden: %d", s.Cause)
	}

	// Overflowing the fixed stack is safe: excess pushes are dropped.
	for i := 0; i < 32; i++ {
		p.PushCause(root)
	}
	for i := 0; i < 64; i++ {
		p.PopCause()
	}
	if id := p.Deploy(at(0), "c9", "UNSATISFIED", ""); id == 0 {
		t.Fatal("plane broken after cause-stack overflow")
	}
}

func TestOpenCauses(t *testing.T) {
	p := NewPlane(Options{})
	inj := p.FaultInject(at(0), "exec-inflate", "calc", "x4.0")
	p.SetOpenCause("calc", inj)
	if got := p.OpenCause("calc"); got != inj {
		t.Fatalf("OpenCause = %d, want %d", got, inj)
	}
	if got := p.OpenCause("disp"); got != 0 {
		t.Fatalf("OpenCause on untargeted component = %d", got)
	}
	p.ClearOpenCause("calc")
	if got := p.OpenCause("calc"); got != 0 {
		t.Fatalf("OpenCause after clear = %d", got)
	}
}

func TestWhyChain(t *testing.T) {
	p := NewPlane(Options{})
	inj := p.FaultInject(at(0), "exec-inflate", "calc", "")
	vio := p.Violation(at(time.Millisecond), "calc", "BudgetOverrun", "", inj)
	rev := p.Revoke(at(time.Millisecond), "calc", "violation")
	if s, _ := p.Span(rev); s.Cause != 0 {
		t.Fatalf("revoke picked up a cause without a push: %d", s.Cause)
	}
	p.PushCause(vio)
	rev2 := p.Revoke(at(2*time.Millisecond), "calc", "violation")
	p.PopCause()
	p.Transition(at(2*time.Millisecond), "disp", "ACTIVE", "UNSATISFIED", "provider down", rev2)

	chain := p.Why("disp")
	if len(chain) != 4 {
		t.Fatalf("Why(disp) length = %d, want 4: %v", len(chain), chain)
	}
	wantKinds := []Kind{KindTransition, KindRevoke, KindViolation, KindFaultInject}
	for i, k := range wantKinds {
		if chain[i].Kind != k {
			t.Fatalf("chain[%d].Kind = %v, want %v", i, chain[i].Kind, k)
		}
	}
	// calc's latest span is rev2; its chain roots at the violation, whose
	// cause (the inject) is also live, so the full chain is 3 deep too.
	if got := p.Why("calc"); len(got) != 3 || got[2].ID != inj {
		t.Fatalf("Why(calc) = %v", got)
	}
	if got := p.Why("nobody"); got != nil {
		t.Fatalf("Why on unknown component = %v", got)
	}
}

func TestWhyStopsAtEvictedCause(t *testing.T) {
	p := NewPlane(Options{Capacity: 4})
	root := p.Violation(at(0), "calc", "BudgetOverrun", "", 0)
	for i := 0; i < 6; i++ {
		p.Deploy(at(0), "filler", "UNSATISFIED", "")
	}
	p.Transition(at(0), "disp", "ACTIVE", "UNSATISFIED", "", root)
	chain := p.Why("disp")
	if len(chain) != 1 {
		t.Fatalf("chain should stop at the evicted cause: %v", chain)
	}
}

func TestDigestDeterministicAndLevelIndependent(t *testing.T) {
	run := func(level Level) *Plane {
		p := NewPlane(Options{Level: level})
		p.Deploy(at(0), "calc", "UNSATISFIED", "deployed")
		p.ResolveRound(at(0), 1, 0) // excluded from both digests
		tr := p.Transition(at(time.Millisecond), "calc", "UNSATISFIED", "SATISFIED", "resolved", 0)
		p.Transition(at(time.Millisecond), "calc", "SATISFIED", "ACTIVE", "admitted", tr)
		p.Deny(at(2*time.Millisecond), "disp", "admission denied: cpu full", 0)
		// The degradation and supervision kinds fold into the digests too.
		dg := p.Downgrade(at(3*time.Millisecond), "calc", "full", "eco", "budget-overrun", 0)
		p.Upgrade(at(4*time.Millisecond), "calc", "eco", "full", "capacity freed", dg)
		rs := p.Restart(at(5*time.Millisecond), "zaux", 1, "crashed", 0)
		p.Escalate(at(6*time.Millisecond), "zaux", "zaux", "restart budget exhausted", rs)
		return p
	}
	a, b, full := run(Sampled), run(Sampled), run(Full)
	if a.Digest() != b.Digest() || a.StreamDigest() != b.StreamDigest() {
		t.Fatal("same emissions produced different digests")
	}
	if a.Digest() == a.StreamDigest() {
		t.Fatal("full and stream digests should differ (IDs and causes included vs not)")
	}
	if a.StreamDigest() != full.StreamDigest() {
		t.Fatal("StreamDigest must be independent of the sampling level")
	}
	if a.Digest() == full.Digest() {
		// Full's resolve-round span consumes an ID, shifting every later
		// ID and cause edge: the full digest is per-level by design.
		t.Fatal("Digest should differ across levels once resolve-round spans consume IDs")
	}
	if full.Emitted() <= a.Emitted() {
		t.Fatal("Full level should have emitted the extra resolve-round span")
	}

	// Digests are pure functions of the emission sequence — an extra span
	// changes both.
	c := run(Sampled)
	c.Deploy(at(3*time.Millisecond), "extra", "UNSATISFIED", "")
	if c.Digest() == a.Digest() || c.StreamDigest() == a.StreamDigest() {
		t.Fatal("digest did not change with the stream")
	}

	// Digest() folds in IDs and causes; StreamDigest doesn't. Re-running
	// with a different cause edge must change only the full digest.
	d := NewPlane(Options{})
	d.Deploy(at(0), "calc", "UNSATISFIED", "deployed")
	d.ResolveRound(at(0), 1, 0)
	d.Transition(at(time.Millisecond), "calc", "UNSATISFIED", "SATISFIED", "resolved", 0)
	d.Transition(at(time.Millisecond), "calc", "SATISFIED", "ACTIVE", "admitted", 0) // cause dropped
	d.Deny(at(2*time.Millisecond), "disp", "admission denied: cpu full", 0)
	d.Downgrade(at(3*time.Millisecond), "calc", "full", "eco", "budget-overrun", 0)
	d.Upgrade(at(4*time.Millisecond), "calc", "eco", "full", "capacity freed", 0) // cause dropped
	d.Restart(at(5*time.Millisecond), "zaux", 1, "crashed", 0)
	d.Escalate(at(6*time.Millisecond), "zaux", "zaux", "restart budget exhausted", 0) // cause dropped
	if d.StreamDigest() != a.StreamDigest() {
		t.Fatal("StreamDigest must ignore cause edges")
	}
	if d.Digest() == a.Digest() {
		t.Fatal("Digest must pin cause edges")
	}
}

func TestSpanString(t *testing.T) {
	cases := []struct {
		s    Span
		want string
	}{
		{Span{ID: 7, At: at(2 * time.Millisecond), Kind: KindTransition, Component: "calc",
			From: "SATISFIED", To: "ACTIVE", Detail: "admitted", Cause: 3},
			"#7 [2ms] transition calc SATISFIED->ACTIVE (admitted) <- #3"},
		{Span{ID: 1, At: at(0), Kind: KindDeploy, Component: "calc", To: "UNSATISFIED"},
			"#1 [0s] deploy calc UNSATISFIED"},
		{Span{ID: 4, At: at(time.Second), Kind: KindQuarantine, Component: "calc", N: 4, Cause: 2},
			"#4 [1s] quarantine calc n=4 <- #2"},
		{Span{ID: 9, At: at(0), Kind: KindSched, Component: "tick", To: "dispatch", N: 1},
			"#9 [0s] sched tick dispatch"},
		{Span{ID: 11, At: at(3 * time.Millisecond), Kind: KindDowngrade, Component: "calc",
			From: "full", To: "eco", Detail: "budget-overrun", Cause: 5},
			"#11 [3ms] downgrade calc full->eco (budget-overrun) <- #5"},
		{Span{ID: 12, At: at(4 * time.Millisecond), Kind: KindUpgrade, Component: "calc",
			From: "eco", To: "full", Detail: "capacity freed"},
			"#12 [4ms] upgrade calc eco->full (capacity freed)"},
		{Span{ID: 13, At: at(5 * time.Millisecond), Kind: KindRestart, Component: "zaux",
			N: 2, Detail: "crashed: injected", Cause: 8},
			"#13 [5ms] restart zaux n=2 (crashed: injected) <- #8"},
		{Span{ID: 14, At: at(6 * time.Millisecond), Kind: KindEscalate, Component: "zaux",
			To: "bundle stb.aux", Detail: "restart budget exhausted"},
			"#14 [6ms] escalate zaux bundle stb.aux (restart budget exhausted)"},
	}
	for _, c := range cases {
		if got := c.s.String(); got != c.want {
			t.Fatalf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestKindStringExhaustive(t *testing.T) {
	for k := KindDeploy; k <= KindForecast; k++ {
		if s := k.String(); strings.HasPrefix(s, "Kind(") || s == "" {
			t.Fatalf("kind %d has no name: %q", k, s)
		}
	}
	if got := Kind(0).String(); got != "Kind(0)" {
		t.Fatalf("zero kind = %q", got)
	}
	if got := Kind(99).String(); got != "Kind(99)" {
		t.Fatalf("unknown kind = %q", got)
	}
}

func TestSnapshotCountersAndEncode(t *testing.T) {
	p := NewPlane(Options{})
	p.SetLoadFunc(func() []float64 { return []float64{0.25, 0.5} })
	p.Deploy(at(0), "calc", "UNSATISFIED", "")
	tr := p.Transition(at(0), "calc", "UNSATISFIED", "SATISFIED", "", 0)
	p.Transition(at(0), "calc", "SATISFIED", "ACTIVE", "", tr)
	p.Transition(at(0), "calc", "ACTIVE", "UNSATISFIED", "", 0)
	p.Deny(at(0), "disp", "no cpu", 0)
	p.Violation(at(0), "calc", "BudgetOverrun", "", 0)
	p.Revoke(at(0), "calc", "")
	p.Quarantine(at(0), "calc", 4, 0)
	p.Restore(at(0), "calc", "")
	p.FaultInject(at(0), "exec-inflate", "calc", "")
	p.FaultClear(at(0), "exec-inflate", "calc", "", 0)
	p.NoteDrain()
	p.ResolveRound(at(0), 2, 1)
	p.ResolveRound(at(0), 0, 0) // empty round: counted, not sampled

	s := p.Snapshot()
	if s.Lifecycle.Deploys != 1 || s.Lifecycle.Transitions != 3 ||
		s.Lifecycle.Activations != 1 || s.Lifecycle.Deactivations != 1 ||
		s.Lifecycle.Denials != 1 {
		t.Fatalf("lifecycle stats: %+v", s.Lifecycle)
	}
	if s.Contract.Violations != 1 || s.Contract.Revocations != 1 ||
		s.Contract.Restores != 1 || s.Contract.Quarantines != 1 {
		t.Fatalf("contract stats: %+v", s.Contract)
	}
	if s.Fault.Injections != 1 || s.Fault.Clears != 1 {
		t.Fatalf("fault stats: %+v", s.Fault)
	}
	if s.Resolve.Drains != 1 || s.Resolve.Rounds != 2 ||
		s.Resolve.MaxWorklistDepth != 3 || s.Resolve.DepthSamples != 1 {
		t.Fatalf("resolve stats: %+v", s.Resolve)
	}
	if len(s.CPUs) != 2 || s.CPUs[1].DeclaredLoad != 0.5 {
		t.Fatalf("cpu stats: %+v", s.CPUs)
	}
	if len(s.Components) != 2 || s.Components[0].Name != "calc" || s.Components[1].Name != "disp" {
		t.Fatalf("component stats not sorted: %+v", s.Components)
	}
	if s.Components[0].Transitions != 4 || s.Components[1].Denials != 1 {
		t.Fatalf("per-component counters: %+v", s.Components)
	}

	data, err := s.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if data[len(data)-1] != '\n' {
		t.Fatal("Encode must end with a newline")
	}
	var round Snapshot
	if err := json.Unmarshal(data, &round); err != nil {
		t.Fatalf("Encode produced invalid JSON: %v", err)
	}
	if round.Lifecycle != s.Lifecycle || round.Digest != s.Digest {
		t.Fatal("snapshot did not survive a JSON round trip")
	}
	data2, _ := p.Snapshot().Encode()
	if string(data) != string(data2) {
		t.Fatal("two snapshots of the same state encode differently")
	}
	if !strings.Contains(s.Format(), "1 violations") {
		t.Fatalf("Format() table missing contract row:\n%s", s.Format())
	}
}

func TestDepthSeriesCapped(t *testing.T) {
	p := NewPlane(Options{})
	for i := 0; i < depthSampleCap+100; i++ {
		p.ResolveRound(at(0), 1, 1)
	}
	p.ResolveRound(at(0), 50, 0)
	s := p.Snapshot()
	if s.Resolve.DepthSamples != depthSampleCap {
		t.Fatalf("depth samples = %d, want cap %d", s.Resolve.DepthSamples, depthSampleCap)
	}
	if s.Resolve.MaxWorklistDepth != 50 {
		t.Fatalf("max depth counter must stay exact past the cap: %d", s.Resolve.MaxWorklistDepth)
	}
}

func TestObserverDelegates(t *testing.T) {
	p := NewPlane(Options{})
	o := p.Observer()
	p.Deploy(at(0), "calc", "UNSATISFIED", "")
	if o.Level() != Sampled {
		t.Fatalf("observer level = %v", o.Level())
	}
	o.SetLevel(Full)
	if p.Level() != Full {
		t.Fatal("observer SetLevel did not reach the plane")
	}
	if len(o.Spans()) != 1 || o.NextID() != 2 {
		t.Fatal("observer span reads disagree with the plane")
	}
	if _, ok := o.Last("calc"); !ok {
		t.Fatal("observer Last failed")
	}
	if o.Digest() != p.Digest() || o.StreamDigest() != p.StreamDigest() {
		t.Fatal("observer digests disagree with the plane")
	}
	if o.Snapshot().SpansEmitted != 1 {
		t.Fatal("observer snapshot disagrees with the plane")
	}
}
