package obs

import (
	"encoding/json"
	"testing"
)

func TestRecordLatencyAndStats(t *testing.T) {
	p := NewPlane(Options{Node: "n0"})
	if got := p.LatencyStats(); len(got) != 0 {
		t.Fatalf("fresh plane has latency stats: %+v", got)
	}
	for i := 0; i < 100; i++ {
		p.RecordLatency(LatResolve, 1000)
	}
	p.RecordLatency(LatResolve, 1_000_000)
	p.RecordLatency(LatMigrate, 5000)
	p.RecordLatency(LatMigrate, -3)      // clamped, not dropped
	p.RecordLatency(LatencyKind(250), 1) // out of range: ignored
	stats := p.LatencyStats()
	if len(stats) != 2 {
		t.Fatalf("want 2 populated kinds, got %+v", stats)
	}
	// Canonical enum order: resolve before migrate-e2e.
	if stats[0].Name != "resolve" || stats[1].Name != "migrate-e2e" {
		t.Fatalf("stats out of canonical order: %+v", stats)
	}
	r := stats[0]
	if r.Count != 101 || r.MaxNS != 1_000_000 {
		t.Fatalf("resolve stat: %+v", r)
	}
	if r.P50NS < 1000 || r.P50NS > 1024 {
		t.Fatalf("resolve p50 %d outside [1000,1024]", r.P50NS)
	}
	if r.P99NS > 1_000_000 || r.P99NS < r.P50NS {
		t.Fatalf("resolve p99 %d out of range", r.P99NS)
	}
	m := stats[1]
	if m.Count != 2 || m.MaxNS != 5000 {
		t.Fatalf("migrate stat: %+v", m)
	}
}

func TestRecordLatencyDisabledPlane(t *testing.T) {
	p := NewPlane(Options{Level: Off})
	p.RecordLatency(LatDeploy, 42)
	if got := p.LatencyStats(); len(got) != 0 {
		t.Fatalf("Off plane recorded latency: %+v", got)
	}
	var nilPlane *Plane
	nilPlane.RecordLatency(LatDeploy, 42) // must not panic
	if got := nilPlane.LatencyStats(); got != nil {
		t.Fatalf("nil plane returned stats: %+v", got)
	}
}

func TestMergeLatencyStats(t *testing.T) {
	a := NewPlane(Options{})
	b := NewPlane(Options{})
	a.RecordLatency(LatDeploy, 100)
	a.RecordLatency(LatDeploy, 200)
	b.RecordLatency(LatDeploy, 400)
	b.RecordLatency(LatRevoke, 900)
	merged := MergeLatencyStats(a, b, nil)
	if len(merged) != 2 {
		t.Fatalf("merged stats: %+v", merged)
	}
	if merged[0].Name != "deploy" || merged[0].Count != 3 {
		t.Fatalf("deploy merge: %+v", merged[0])
	}
	if merged[1].Name != "revoke-propagation" || merged[1].Count != 1 {
		t.Fatalf("revoke merge: %+v", merged[1])
	}
	if merged[0].MaxNS != 400 {
		t.Fatalf("deploy merged max %d, want 400", merged[0].MaxNS)
	}
}

// SummaryJSON is a committed export format: stable key order, 2-space
// indent, trailing newline, empty latency as [] not null.
func TestSummaryJSONStable(t *testing.T) {
	p := NewPlane(Options{Node: "n3"})
	emptyBytes, err := p.SummaryJSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(emptyBytes) != "{\n  \"node\": \"n3\",\n  \"latency\": []\n}\n" {
		t.Fatalf("empty summary drifted:\n%q", emptyBytes)
	}
	p.RecordLatency(LatPlanApply, 2048)
	out, err := p.SummaryJSON()
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Node    string        `json:"node"`
		Latency []LatencyStat `json:"latency"`
	}
	if err := json.Unmarshal(out, &decoded); err != nil {
		t.Fatalf("summary not valid JSON: %v\n%s", err, out)
	}
	if decoded.Node != "n3" || len(decoded.Latency) != 1 || decoded.Latency[0].Name != "plan-apply" {
		t.Fatalf("summary content: %+v", decoded)
	}
	again, err := p.SummaryJSON()
	if err != nil || string(again) != string(out) {
		t.Fatal("SummaryJSON not reproducible")
	}
}

// The histogram record path must be allocation-free: it sits on the
// resolve/deploy hot paths at the default Sampled level.
func TestRecordLatencyAllocFree(t *testing.T) {
	p := NewPlane(Options{})
	v := int64(1)
	avg := testing.AllocsPerRun(1000, func() {
		p.RecordLatency(LatResolve, v)
		p.RecordLatency(LatPlanApply, v*7)
		v++
	})
	if avg > 0.001 {
		t.Fatalf("RecordLatency allocates: %v allocs/op", avg)
	}
}
