package obs

import (
	"testing"
	"time"

	"repro/internal/rtos"
	"repro/internal/sim"
)

// The emit path — ring store, counter bumps, digest fold — must be
// allocation-free once the per-component counter cells exist, or the
// plane would tax the resolve and guard hot paths it instruments.
func TestEmitAllocFree(t *testing.T) {
	p := NewPlane(Options{})
	// Warm up: create the per-component cells and last-span entries.
	p.Deploy(0, "calc", "UNSATISFIED", "warm")
	p.Transition(0, "calc", "UNSATISFIED", "SATISFIED", "warm", 0)
	p.Deny(0, "calc", "warm", 0)
	p.Violation(0, "calc", "BudgetOverrun", "warm", 0)
	p.Revoke(0, "calc", "warm")
	p.Restore(0, "calc", "warm")
	p.Quarantine(0, "calc", 4, 0)
	p.FaultInject(0, "exec-inflate", "calc", "warm")
	p.FaultClear(0, "exec-inflate", "calc", "warm", 0)
	// Fill the depth series so ResolveRound stops appending samples.
	for p.depth.Len() < depthSampleCap {
		p.ResolveRound(0, 1, 0)
	}

	now := sim.Time(time.Millisecond)
	cases := map[string]func(){
		"transition": func() { p.Transition(now, "calc", "SATISFIED", "ACTIVE", "admitted", 1) },
		"deny":       func() { p.Deny(now, "calc", "admission denied: cpu full", 0) },
		"revoke":     func() { p.Revoke(now, "calc", "violation") },
		"violation":  func() { p.Violation(now, "calc", "BudgetOverrun", "3x", 2) },
		"quarantine": func() { p.Quarantine(now, "calc", 4, 2) },
		"fault":      func() { p.FaultInject(now, "exec-inflate", "calc", "x4") },
		"round":      func() { p.ResolveRound(now, 2, 1) },
		"drain":      func() { p.NoteDrain() },
		"cause": func() {
			p.PushCause(3)
			p.Transition(now, "calc", "ACTIVE", "UNSATISFIED", "cascade", 0)
			p.PopCause()
		},
	}
	for name, f := range cases {
		if n := testing.AllocsPerRun(200, f); n != 0 {
			t.Errorf("%s allocates %.1f per emit", name, n)
		}
	}
}

// The scheduler bridge (Full level) rides the sim hot path: after the
// kernel has warmed up, ticking with the sink attached must not
// allocate.
func TestSchedBridgeAllocFree(t *testing.T) {
	k := rtos.NewKernel(rtos.Config{Seed: 1})
	p := NewPlane(Options{Level: Full})
	p.BindKernel(k)
	task, err := k.CreateTask(rtos.TaskSpec{
		Name: "tick", Type: rtos.Periodic, Period: time.Millisecond,
		ExecTime: 30 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := task.Start(); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(200 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(50, func() {
		if err := k.Run(time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("sim tick with Full-level sched bridge allocates %.1f per ms", n)
	}
	if p.Snapshot().Sched.Events == 0 {
		t.Fatal("bridge emitted no sched spans")
	}
}

// Reading digests must not disturb the running hashes (Sum must copy).
func TestDigestReadIsPure(t *testing.T) {
	p := NewPlane(Options{})
	p.Deploy(0, "calc", "UNSATISFIED", "")
	d1 := p.Digest()
	s1 := p.StreamDigest()
	if p.Digest() != d1 || p.StreamDigest() != s1 {
		t.Fatal("reading a digest changed it")
	}
	p.Deny(0, "calc", "x", 0)
	if p.Digest() == d1 {
		t.Fatal("digest frozen after read")
	}
}
