// Latency histograms: fixed-bucket log2 distributions for the DRCR's
// end-to-end reaction latencies, recorded with a zero-allocation path
// (an inline array of metrics.Log2Hist — no pointers, no maps). Wall
// latencies (resolve, deploy, plan apply) measure host nanoseconds of
// the management operation; propagation latencies (migration, cluster
// revocation) measure simulated nanoseconds between cause and effect.
// None of them enter any digest — wall times are machine-dependent by
// nature — so determinism pins are unaffected.

package obs

import (
	"encoding/json"
	"strconv"

	"repro/internal/metrics"
)

// LatencyKind names one tracked latency distribution.
type LatencyKind int

// Latency kinds. The enum order is the committed canonical export order
// (Snapshot and SummaryJSON list histograms in this order).
const (
	// LatResolve is the wall time of one resolve drain (runResolve).
	LatResolve LatencyKind = iota
	// LatDeploy is the wall time of one Deploy or DeployAll call.
	LatDeploy
	// LatPlanApply is the wall time of one compiled-plan fast-path apply.
	LatPlanApply
	// LatMigrate is the simulated end-to-end time of one migration:
	// from the leader's decision to the component admitted on the
	// destination node.
	LatMigrate
	// LatRevoke is the simulated propagation time of one cluster
	// revocation: from the leader's send to the destination applying it.
	LatRevoke

	latKinds // count sentinel
)

// latencyNames is the static name table, indexed by LatencyKind.
var latencyNames = [latKinds]string{
	LatResolve:   "resolve",
	LatDeploy:    "deploy",
	LatPlanApply: "plan-apply",
	LatMigrate:   "migrate-e2e",
	LatRevoke:    "revoke-propagation",
}

func (k LatencyKind) String() string {
	if k >= 0 && k < latKinds {
		return latencyNames[k]
	}
	return "LatencyKind(" + strconv.Itoa(int(k)) + ")"
}

// RecordLatency folds one sample (nanoseconds; wall or simulated per
// the kind's contract) into the kind's histogram. It never allocates —
// it runs inside resolve and deploy hot paths at every sampling level
// except Off.
func (p *Plane) RecordLatency(k LatencyKind, ns int64) {
	if !p.enabled() || k < 0 || k >= latKinds {
		return
	}
	p.lat[k].Observe(ns)
}

// Latency returns a copy of one kind's histogram.
func (p *Plane) Latency(k LatencyKind) metrics.Log2Hist {
	if p == nil || k < 0 || k >= latKinds {
		return metrics.Log2Hist{}
	}
	return p.lat[k]
}

// LatencyStat is the exported summary of one latency distribution.
// Quantiles are deterministic bucket upper bounds (metrics.Log2Hist).
type LatencyStat struct {
	Name  string `json:"name"`
	Count uint64 `json:"count"`
	P50NS int64  `json:"p50_ns"`
	P95NS int64  `json:"p95_ns"`
	P99NS int64  `json:"p99_ns"`
	MaxNS int64  `json:"max_ns"`
}

// LatencyStats summarises every non-empty latency histogram in the
// committed canonical kind order.
func (p *Plane) LatencyStats() []LatencyStat {
	if p == nil {
		return nil
	}
	var out []LatencyStat
	for k := LatencyKind(0); k < latKinds; k++ {
		h := &p.lat[k]
		if h.Count() == 0 {
			continue
		}
		out = append(out, LatencyStat{
			Name:  k.String(),
			Count: h.Count(),
			P50NS: h.Quantile(0.50),
			P95NS: h.Quantile(0.95),
			P99NS: h.Quantile(0.99),
			MaxNS: h.Max(),
		})
	}
	return out
}

// MergeLatencyStats folds many planes' histograms into one summary in
// canonical kind order — the cluster-wide view across node planes.
func MergeLatencyStats(planes ...*Plane) []LatencyStat {
	var merged [latKinds]metrics.Log2Hist
	for _, p := range planes {
		if p == nil {
			continue
		}
		for k := LatencyKind(0); k < latKinds; k++ {
			merged[k].Merge(&p.lat[k])
		}
	}
	var out []LatencyStat
	for k := LatencyKind(0); k < latKinds; k++ {
		if merged[k].Count() == 0 {
			continue
		}
		out = append(out, LatencyStat{
			Name:  k.String(),
			Count: merged[k].Count(),
			P50NS: merged[k].Quantile(0.50),
			P95NS: merged[k].Quantile(0.95),
			P99NS: merged[k].Quantile(0.99),
			MaxNS: merged[k].Max(),
		})
	}
	return out
}

// latencySummary is the SummaryJSON document shape.
type latencySummary struct {
	Node    string        `json:"node,omitempty"`
	Latency []LatencyStat `json:"latency"`
}

// SummaryJSON renders the latency summary as stable JSON: fixed field
// order, histograms in the committed canonical kind order, 2-space
// indent, trailing newline. Intended for machine consumers (exporters,
// the bench reports); unlike Snapshot it carries only the latency
// distributions and the plane's node identity.
func (p *Plane) SummaryJSON() ([]byte, error) {
	doc := latencySummary{Latency: p.LatencyStats()}
	if p != nil {
		doc.Node = p.node
	}
	if doc.Latency == nil {
		doc.Latency = []LatencyStat{}
	}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}
