package obs

import (
	"testing"
	"time"
)

func TestFlightRecorderCapturesWindow(t *testing.T) {
	p := NewPlane(Options{FlightPre: 4, FlightPost: 3})
	for i := 0; i < 10; i++ {
		p.Deploy(at(time.Duration(i)*time.Millisecond), "warm", "U", "")
	}
	trig := p.Violation(at(20*time.Millisecond), "calc", "BudgetOverrun", "", 0)
	if got := p.FlightDumps(); len(got) != 1 {
		t.Fatalf("violation opened %d dumps", len(got))
	}
	d := p.FlightDumps()[0]
	if d.Trigger != trig || d.Complete() {
		t.Fatalf("fresh dump: %+v", d)
	}
	// Pre-window: the FlightPre most recent spans, trigger included.
	if len(d.Spans) != 4 || d.Spans[len(d.Spans)-1].ID != trig {
		t.Fatalf("pre-window wrong: %d spans, last %d", len(d.Spans), d.Spans[len(d.Spans)-1].ID)
	}
	// Post-window: the next 3 spans complete it; later spans don't grow it.
	for i := 0; i < 6; i++ {
		p.Deploy(at(30*time.Millisecond), "post", "U", "")
	}
	d2, ok := p.FlightDump(d.Name)
	if !ok || !d2.Complete() || len(d2.Spans) != 7 {
		t.Fatalf("post-window wrong: ok=%v complete=%v spans=%d", ok, d2.Complete(), len(d2.Spans))
	}
	wantAt := at(20 * time.Millisecond)
	if d2.At != wantAt {
		t.Fatalf("dump At %v, want %v", d2.At, wantAt)
	}
}

func TestFlightRecorderTriggerKindsAndCap(t *testing.T) {
	p := NewPlane(Options{FlightPre: 2, FlightPost: 1, FlightMax: 3})
	p.Violation(at(0), "a", "BudgetOverrun", "", 0)
	p.Escalate(at(0), "b", "restart", "too many restarts", 0)
	p.NodeLoss(at(0), "n5", 1, "unreachable", 0)
	if got := len(p.FlightDumps()); got != 3 {
		t.Fatalf("3 trigger kinds opened %d dumps", got)
	}
	// Cap reached: further triggers are dropped, not rotated.
	p.Violation(at(0), "c", "BudgetOverrun", "", 0)
	if got := len(p.FlightDumps()); got != 3 {
		t.Fatalf("cap not enforced: %d dumps", got)
	}
	// Non-trigger kinds never open dumps.
	q := NewPlane(Options{})
	q.Deploy(at(0), "x", "U", "")
	q.Revoke(at(0), "x", "over budget")
	if len(q.FlightDumps()) != 0 {
		t.Fatalf("non-trigger kinds opened dumps")
	}
}

func TestTriggerFlightExplicitAndDedupe(t *testing.T) {
	p := NewPlane(Options{FlightPre: 2, FlightPost: 2})
	p.Deploy(at(0), "calc", "U", "")
	p.TriggerFlight("split-brain-calc", at(time.Millisecond))
	p.TriggerFlight("split-brain-calc", at(2*time.Millisecond)) // dedupe
	dumps := p.FlightDumps()
	if len(dumps) != 1 {
		t.Fatalf("dedupe failed: %d dumps", len(dumps))
	}
	d := dumps[0]
	if d.Name != "split-brain-calc" || d.Trigger != 0 || d.At != at(time.Millisecond) {
		t.Fatalf("explicit dump: %+v", d)
	}
	if _, ok := p.FlightDump("ghost"); ok {
		t.Fatal("FlightDump returned a dump for an unknown name")
	}
}

func TestFlightRecorderDisabled(t *testing.T) {
	p := NewPlane(Options{FlightOff: true})
	p.Violation(at(0), "a", "BudgetOverrun", "", 0)
	p.TriggerFlight("manual", at(0))
	if len(p.FlightDumps()) != 0 {
		t.Fatal("FlightOff plane captured dumps")
	}
	var nilPlane *Plane
	nilPlane.TriggerFlight("x", at(0)) // must not panic
	if nilPlane.FlightDumps() != nil {
		t.Fatal("nil plane returned dumps")
	}
}

// Returned dumps are snapshots: mutating them must not corrupt the
// recorder's retained state.
func TestFlightDumpsAreCopies(t *testing.T) {
	p := NewPlane(Options{FlightPre: 2, FlightPost: 1})
	p.Violation(at(0), "a", "BudgetOverrun", "", 0)
	d := p.FlightDumps()[0]
	if len(d.Spans) == 0 {
		t.Fatal("empty dump")
	}
	d.Spans[0].Component = "clobbered"
	fresh, _ := p.FlightDump(d.Name)
	if fresh.Spans[0].Component == "clobbered" {
		t.Fatal("FlightDumps exposed internal storage")
	}
}
