// Per-shard span emission: at Full level on a sharded kernel, scheduler
// spans no longer funnel through the sequential control plane. Each
// rtos shard gets its own emitter — a lock-free, shard-goroutine-local
// staging buffer fed by the kernel's per-shard trace sinks — and the
// window barrier merges the staged spans under the stable (At, CPU,
// seq) order before assigning IDs and folding counters, exactly where
// the old funnel would have replayed them. Because a CPU lives on
// exactly one shard and each buffer preserves its shard's chronological
// order, a stable sort of the concatenation (shard order) by (At, CPU)
// reproduces the canonical sequential order byte for byte — so span
// IDs, Digest and StreamDigest are identical to the funnel's at every
// shard count, which the differential tests pin.

package obs

import (
	"sort"

	"repro/internal/rtos"
	"repro/internal/sim"
)

// shardEmitter is one shard's staging buffer. It is written only by its
// shard's goroutine during a window and drained only at barriers on the
// control goroutine, so it needs no lock.
type shardEmitter struct {
	staged []stagedSched
}

// stagedSched is a scheduler event staged before ID assignment. Only
// the fields a sched span carries are staged; the merge builds the Span.
type stagedSched struct {
	at   int64 // sim.Time
	kind rtos.TraceEventKind
	task string
	cpu  int
}

// schedSorter stable-sorts staged events by (At, CPU); it lives on the
// Plane so sorting allocates nothing. Equal (At, CPU) pairs keep their
// buffer order — each CPU's events are chronological within one shard
// — matching rtos.CanonicalizeTrace.
type schedSorter struct{ s []stagedSched }

func (ss *schedSorter) Len() int { return len(ss.s) }
func (ss *schedSorter) Less(i, j int) bool {
	if ss.s[i].at != ss.s[j].at {
		return ss.s[i].at < ss.s[j].at
	}
	return ss.s[i].cpu < ss.s[j].cpu
}
func (ss *schedSorter) Swap(i, j int) { ss.s[i], ss.s[j] = ss.s[j], ss.s[i] }

// SetSchedFunnel forces (true) or lifts (false) the sequential
// control-plane funnel for scheduler spans on sharded kernels; the
// differential tests use it to compare the two emission paths. The
// default is per-shard emission.
func (p *Plane) SetSchedFunnel(funnel bool) {
	if p == nil {
		return
	}
	p.schedFunnel = funnel
	p.syncKernelSink()
}

// ensureEmitters sizes the per-shard emitter set and sink table.
func (p *Plane) ensureEmitters(n int) {
	if len(p.emitters) == n {
		return
	}
	p.emitters = make([]*shardEmitter, n)
	p.shardSinks = make([]rtos.TraceSink, n)
	for i := range p.emitters {
		e := &shardEmitter{}
		p.emitters[i] = e
		p.shardSinks[i] = func(at sim.Time, kind rtos.TraceEventKind, task string, cpu int) {
			e.staged = append(e.staged, stagedSched{at: int64(at), kind: kind, task: task, cpu: cpu})
		}
	}
}

// mergeShards drains every emitter at a window barrier: concatenate in
// shard order, stable-sort by (At, CPU), then emit each sched span on
// the control goroutine — the same IDs, digests and counters the funnel
// would have produced.
func (p *Plane) mergeShards() {
	buf := p.schedMerge[:0]
	for _, e := range p.emitters {
		buf = append(buf, e.staged...)
		e.staged = e.staged[:0]
	}
	if len(buf) == 0 {
		p.schedMerge = buf
		return
	}
	p.sorter.s = buf
	sort.Stable(&p.sorter)
	p.sorter.s = nil
	for i := range buf {
		p.c.schedEvents++
		p.emit(Span{At: sim.Time(buf[i].at), Kind: KindSched, Component: buf[i].task, To: buf[i].kind.String(), N: int64(buf[i].cpu)})
	}
	p.schedMerge = buf
}
