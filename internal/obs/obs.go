// Package obs is the DRCom observability plane: a deterministic,
// allocation-disciplined causal lifecycle tracer plus a metrics registry,
// surfaced to applications through the read-only Observer — the
// introspective half of the paper's DRCR management interface.
//
// Every DRCR decision (deploy, resolve round, admit/deny,
// activate/deactivate, revoke/restore, quarantine, violation, fault
// application) is emitted as a typed Span carrying the sim-clock
// timestamp, the component, and the *cause* span ID — which violation
// triggered the revoke, which provider transition cascaded a dependant
// down — so a whole reaction chain reconstructs as a tree. Spans live in
// a fixed ring buffer indexed by span ID; two incremental SHA-256
// digests pin the stream (Digest includes IDs and cause edges,
// StreamDigest excludes them so the two resolve engines can be compared
// modulo round internals).
//
// The plane is not safe for concurrent use, exactly like the simulated
// kernel: the whole simulation is single-threaded by design.
package obs

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"hash"
	"strconv"

	"repro/internal/metrics"
	"repro/internal/rtos"
	"repro/internal/sim"
)

// Level is the sampling level of the plane.
type Level int

// Sampling levels. The zero value is the default: every DRCR decision is
// traced, but per-round resolve internals and the scheduler bridge stay
// off so the resolve and sim hot paths remain allocation-free.
const (
	// Sampled traces every lifecycle decision (deploys, transitions,
	// denials, revocations, violations, faults) and keeps subsystem
	// counters, but emits no per-round or per-dispatch spans.
	Sampled Level = iota
	// Off disables the plane entirely.
	Off
	// Full adds resolve-round spans and bridges the kernel's scheduler
	// trace (release/dispatch/preempt/...) into the span stream.
	Full
)

func (l Level) String() string {
	switch l {
	case Off:
		return "off"
	case Sampled:
		return "sampled"
	case Full:
		return "full"
	default:
		return "Level(" + strconv.Itoa(int(l)) + ")"
	}
}

// ParseLevel reads a sampling level name.
func ParseLevel(s string) (Level, error) {
	switch s {
	case "off":
		return Off, nil
	case "sampled":
		return Sampled, nil
	case "full":
		return Full, nil
	}
	return Off, fmt.Errorf("obs: unknown level %q (off|sampled|full)", s)
}

// SpanID identifies one span; IDs are dense, starting at 1. Zero means
// "no span" (no cause, unknown component).
type SpanID uint64

// Kind is the span type.
type Kind uint8

// Span kinds, one per DRCR decision class.
const (
	KindDeploy Kind = iota + 1
	KindTransition
	KindDeny
	KindRevoke
	KindRestore
	KindViolation
	KindQuarantine
	KindFaultInject
	KindFaultClear
	KindFaultReapply
	KindResolveRound
	KindSched
	KindDowngrade
	KindUpgrade
	KindRestart
	KindEscalate
	// Federation kinds (package cluster): cross-node message traffic,
	// placement and migration decisions, and network topology changes.
	KindSend
	KindRecv
	KindMigrate
	KindPartition
	KindHeal
	KindPlace
	KindNodeLoss
	// Stochastic-contract kinds: Monte-Carlo admission verdicts for
	// distribution-valued budgets, and predictive-guard miss forecasts.
	// Appended after the federation kinds so legacy digests are
	// untouched; neither is emitted on constant-budget paths.
	KindAdmit
	KindForecast
)

// kindNames is the static name table; String must stay allocation-free
// for every defined kind (the scheduler bridge calls it per event).
var kindNames = [...]string{
	KindDeploy:       "deploy",
	KindTransition:   "transition",
	KindDeny:         "deny",
	KindRevoke:       "revoke",
	KindRestore:      "restore",
	KindViolation:    "violation",
	KindQuarantine:   "quarantine",
	KindFaultInject:  "fault-inject",
	KindFaultClear:   "fault-clear",
	KindFaultReapply: "fault-reapply",
	KindResolveRound: "resolve-round",
	KindSched:        "sched",
	KindDowngrade:    "downgrade",
	KindUpgrade:      "upgrade",
	KindRestart:      "restart",
	KindEscalate:     "escalate",
	KindSend:         "send",
	KindRecv:         "recv",
	KindMigrate:      "migrate",
	KindPartition:    "partition",
	KindHeal:         "heal",
	KindPlace:        "place",
	KindNodeLoss:     "node-loss",
	KindAdmit:        "admit",
	KindForecast:     "forecast",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return "Kind(" + strconv.Itoa(int(k)) + ")"
}

// Span is one traced DRCR decision.
type Span struct {
	// ID is the dense span identifier (1-based).
	ID SpanID
	// Cause is the span that triggered this one, or 0 for a root span
	// (an external operation).
	Cause SpanID
	// At is the simulated-clock timestamp.
	At sim.Time
	// Kind classifies the decision.
	Kind Kind
	// Component is the subject (component name, fault target, or task).
	Component string
	// From / To carry the lifecycle states of a transition, the fault or
	// violation kind, or the scheduler event name.
	From, To string
	// N is a kind-specific count: quarantine checks, worklist depth, or
	// the CPU of a scheduler event.
	N int64
	// Detail is the human-readable reason.
	Detail string
}

func (s Span) String() string {
	var b []byte
	b = append(b, '#')
	b = strconv.AppendUint(b, uint64(s.ID), 10)
	b = append(b, " ["...)
	b = append(b, s.At.String()...)
	b = append(b, "] "...)
	b = append(b, s.Kind.String()...)
	if s.Component != "" {
		b = append(b, ' ')
		b = append(b, s.Component...)
	}
	switch {
	case s.From != "" && s.To != "":
		b = append(b, ' ')
		b = append(b, s.From...)
		b = append(b, "->"...)
		b = append(b, s.To...)
	case s.To != "":
		b = append(b, ' ')
		b = append(b, s.To...)
	}
	if s.Kind == KindQuarantine || s.Kind == KindResolveRound || s.Kind == KindRestart {
		b = append(b, " n="...)
		b = strconv.AppendInt(b, s.N, 10)
	}
	if s.Detail != "" {
		b = append(b, " ("...)
		b = append(b, s.Detail...)
		b = append(b, ')')
	}
	if s.Cause != 0 {
		b = append(b, " <- #"...)
		b = strconv.AppendUint(b, uint64(s.Cause), 10)
	}
	return string(b)
}

// Options parameterise a Plane.
type Options struct {
	// Level is the initial sampling level (zero value: Sampled).
	Level Level
	// Capacity is the span ring size (default 8192). Old spans are
	// evicted by ID; the running digests are unaffected by eviction.
	Capacity int
	// Node names the plane for federated span identity (see SetNode).
	Node string
	// SchedFunnel forces scheduler spans through the sequential
	// control-plane funnel even on sharded kernels (the pre-v2
	// behaviour); the differential tests pin funnel == per-shard.
	SchedFunnel bool
	// FlightPre / FlightPost size the flight-recorder window around a
	// trigger (defaults 48 / 16); FlightMax caps retained dumps
	// (default 8). FlightOff disables the recorder.
	FlightPre  int
	FlightPost int
	FlightMax  int
	FlightOff  bool
}

// depthSampleCap bounds the worklist-depth series so pathological churn
// cannot grow it without bound; the min/max/mean of the first samples
// plus the running MaxWorklistDepth counter stay exact.
const depthSampleCap = 4096

// Plane is the observability plane one DRCR emits into.
type Plane struct {
	level Level
	ring  []Span
	next  SpanID // last assigned ID; emitted count

	causeDepth int
	causeStack [8]SpanID
	open       map[string]SpanID // open fault cause per target
	last       map[string]SpanID // latest span per component

	full    hash.Hash // digest over id|cause|at|kind|... (cause edges pinned)
	stream  hash.Hash // digest over at|kind|... (engine-comparable)
	scratch []byte
	iscr    []byte

	kernel *rtos.Kernel
	loadFn func() []float64

	c       counters
	perKind [kindCount]uint64
	perComp map[string]*compCounters
	depth   metrics.Series

	// Federated identity and cross-node stitching (stitch.go).
	node   string
	rcause Ref
	remote map[SpanID]Ref

	// Latency histograms (latency.go); inline values, zero-alloc record.
	lat [latKinds]metrics.Log2Hist

	// Per-shard sched emission (sharded.go).
	schedFunnel bool
	emitters    []*shardEmitter
	shardSinks  []rtos.TraceSink
	schedMerge  []stagedSched
	sorter      schedSorter

	// Flight recorder (flightrec.go).
	frPre     int
	frPost    int
	frMax     int
	frDumps   []*FlightDump
	frPending []pendingDump
}

// kindCount sizes the per-kind counter array (kinds are 1-based).
const kindCount = int(KindForecast) + 1

// counters are the subsystem-level metric accumulators.
type counters struct {
	deploys       uint64
	transitions   uint64
	activations   uint64
	deactivations uint64
	denials       uint64
	revocations   uint64
	restores      uint64
	violations    uint64
	quarantines   uint64
	faultInjects  uint64
	faultClears   uint64
	faultReapply  uint64
	resolveDrains uint64
	resolveRounds uint64
	schedEvents   uint64
	maxDepth      int64
	downgrades    uint64
	upgrades      uint64
	restarts      uint64
	escalations   uint64
	sends         uint64
	recvs         uint64
	migrations    uint64
	partitions    uint64
	heals         uint64
	placements    uint64
	nodeLosses    uint64
	planCompiles  uint64
	planCacheHits uint64
	planApplies   uint64
	planFallbacks uint64
	admits        uint64
	forecasts     uint64
}

// compCounters are the per-component metric accumulators.
type compCounters struct {
	transitions uint64
	denials     uint64
	revocations uint64
	violations  uint64
}

// NewPlane builds a plane.
func NewPlane(o Options) *Plane {
	if o.Capacity <= 0 {
		o.Capacity = 8192
	}
	if o.FlightPre <= 0 {
		o.FlightPre = defaultFlightPre
	}
	if o.FlightPost < 0 {
		o.FlightPost = 0
	} else if o.FlightPost == 0 {
		o.FlightPost = defaultFlightPost
	}
	if o.FlightMax <= 0 {
		o.FlightMax = defaultFlightMax
	}
	if o.FlightOff {
		o.FlightMax = 0
	}
	return &Plane{
		level:       o.Level,
		ring:        make([]Span, o.Capacity),
		open:        map[string]SpanID{},
		last:        map[string]SpanID{},
		full:        sha256.New(),
		stream:      sha256.New(),
		scratch:     make([]byte, 0, 256),
		iscr:        make([]byte, 0, 64),
		perComp:     map[string]*compCounters{},
		node:        o.Node,
		schedFunnel: o.SchedFunnel,
		frPre:       o.FlightPre,
		frPost:      o.FlightPost,
		frMax:       o.FlightMax,
	}
}

// Level returns the current sampling level.
func (p *Plane) Level() Level {
	if p == nil {
		return Off
	}
	return p.level
}

// SetLevel switches the sampling level at run time; Full attaches the
// scheduler trace bridge on the bound kernel, any other level detaches
// it.
func (p *Plane) SetLevel(l Level) {
	if p == nil {
		return
	}
	p.level = l
	p.syncKernelSink()
}

// BindKernel attaches the plane to the kernel whose clock, tasks, CPUs
// and IPC registry metric snapshots read from. At Full level the
// kernel's scheduler trace is bridged into the span stream.
func (p *Plane) BindKernel(k *rtos.Kernel) {
	if p == nil {
		return
	}
	p.kernel = k
	p.syncKernelSink()
}

// SetLoadFunc installs the per-CPU declared-load source (the DRCR's
// admission accumulators) consulted at snapshot time.
func (p *Plane) SetLoadFunc(f func() []float64) {
	if p == nil {
		return
	}
	p.loadFn = f
}

func (p *Plane) syncKernelSink() {
	if p.kernel == nil {
		return
	}
	if p.level != Full {
		p.kernel.SetTraceSink(nil)
		p.kernel.SetShardTraceSinks(nil, nil)
		return
	}
	if n := p.kernel.Shards(); n > 1 && !p.schedFunnel {
		// Per-shard emission: each shard stages into its own buffer, the
		// barrier merges in canonical order (sharded.go).
		p.ensureEmitters(n)
		p.kernel.SetTraceSink(nil)
		p.kernel.SetShardTraceSinks(p.shardSinks, p.mergeShards)
		return
	}
	p.kernel.SetShardTraceSinks(nil, nil)
	p.kernel.SetTraceSink(p.schedSpan)
}

// schedSpan is the scheduler trace bridge (Full level only). It must be
// allocation-free after warm-up: the sim hot path runs through it.
func (p *Plane) schedSpan(at sim.Time, kind rtos.TraceEventKind, task string, cpu int) {
	p.c.schedEvents++
	p.emit(Span{At: at, Kind: KindSched, Component: task, To: kind.String(), N: int64(cpu)})
}

// enabled reports whether the plane records anything.
func (p *Plane) enabled() bool { return p != nil && p.level != Off }

// emit assigns the next ID, applies the ambient cause if none is set,
// stores the span in the ring, and folds it into the digests. Sched and
// resolve-round spans are excluded from both digests so the digests are
// comparable across sampling levels and resolve engines.
func (p *Plane) emit(s Span) SpanID {
	if s.Cause == 0 && p.causeDepth > 0 {
		s.Cause = p.causeStack[p.causeDepth-1]
	}
	p.next++
	s.ID = p.next
	p.ring[int((s.ID-1)%SpanID(len(p.ring)))] = s
	if s.Component != "" {
		p.last[s.Component] = s.ID
	}
	if int(s.Kind) < kindCount {
		p.perKind[s.Kind]++
	}
	if s.Cause == 0 && !p.rcause.IsZero() {
		p.linkRemote(s.ID, p.rcause)
	}
	if s.Kind != KindSched && s.Kind != KindResolveRound {
		p.digest(s)
	}
	if p.frMax > 0 {
		p.noteFlight(s)
	}
	return s.ID
}

// digest folds one span into both running hashes without allocating:
// the line is rendered with strconv appends into reused scratch buffers.
func (p *Plane) digest(s Span) {
	b := p.scratch[:0]
	b = strconv.AppendInt(b, int64(s.At), 10)
	b = append(b, '|')
	b = append(b, s.Kind.String()...)
	b = append(b, '|')
	b = append(b, s.Component...)
	b = append(b, '|')
	b = append(b, s.From...)
	b = append(b, '|')
	b = append(b, s.To...)
	b = append(b, '|')
	b = strconv.AppendInt(b, s.N, 10)
	b = append(b, '|')
	b = append(b, s.Detail...)
	b = append(b, '\n')
	p.stream.Write(b)
	ib := p.iscr[:0]
	ib = strconv.AppendUint(ib, uint64(s.ID), 10)
	ib = append(ib, '|')
	ib = strconv.AppendUint(ib, uint64(s.Cause), 10)
	ib = append(ib, '|')
	p.full.Write(ib)
	p.full.Write(b)
	p.scratch = b[:0]
	p.iscr = ib[:0]
}

// PushCause makes id the ambient cause: spans emitted without an
// explicit cause inherit it until the matching PopCause. Pushing 0
// shadows any outer cause (scoping an unrelated operation).
func (p *Plane) PushCause(id SpanID) {
	if !p.enabled() {
		return
	}
	if p.causeDepth < len(p.causeStack) {
		p.causeStack[p.causeDepth] = id
		p.causeDepth++
	}
}

// PopCause removes the innermost ambient cause.
func (p *Plane) PopCause() {
	if !p.enabled() {
		return
	}
	if p.causeDepth > 0 {
		p.causeDepth--
	}
}

// SetOpenCause records the span that opened a long-lived condition (a
// fault) against its target, so later consequences (violations) can name
// it as their cause.
func (p *Plane) SetOpenCause(target string, id SpanID) {
	if !p.enabled() || id == 0 {
		return
	}
	p.open[target] = id
}

// ClearOpenCause forgets the open condition on target.
func (p *Plane) ClearOpenCause(target string) {
	if p == nil {
		return
	}
	delete(p.open, target)
}

// OpenCause returns the span that opened the live condition on target,
// or 0.
func (p *Plane) OpenCause(target string) SpanID {
	if p == nil {
		return 0
	}
	return p.open[target]
}

// Deploy traces a component entering the DRCR.
func (p *Plane) Deploy(at sim.Time, component, to, reason string) SpanID {
	if !p.enabled() {
		return 0
	}
	p.c.deploys++
	p.comp(component).transitions++
	return p.emit(Span{At: at, Kind: KindDeploy, Component: component, To: to, Detail: reason})
}

// Transition traces one Figure 1 state change. Activation and
// deactivation counters are derived from the state names.
func (p *Plane) Transition(at sim.Time, component, from, to, reason string, cause SpanID) SpanID {
	if !p.enabled() {
		return 0
	}
	p.c.transitions++
	p.comp(component).transitions++
	if to == "ACTIVE" && from == "SATISFIED" {
		p.c.activations++
	}
	admitted := func(s string) bool { return s == "ACTIVE" || s == "SUSPENDED" }
	if admitted(from) && !admitted(to) {
		p.c.deactivations++
	}
	return p.emit(Span{At: at, Kind: KindTransition, Cause: cause, Component: component, From: from, To: to, Detail: reason})
}

// Deny traces an admission denial.
func (p *Plane) Deny(at sim.Time, component, reason string, cause SpanID) SpanID {
	if !p.enabled() {
		return 0
	}
	p.c.denials++
	p.comp(component).denials++
	return p.emit(Span{At: at, Kind: KindDeny, Cause: cause, Component: component, Detail: reason})
}

// Revoke traces a budget revocation.
func (p *Plane) Revoke(at sim.Time, component, reason string) SpanID {
	if !p.enabled() {
		return 0
	}
	p.c.revocations++
	p.comp(component).revocations++
	return p.emit(Span{At: at, Kind: KindRevoke, Component: component, Detail: reason})
}

// Restore traces a budget restoration.
func (p *Plane) Restore(at sim.Time, component, reason string) SpanID {
	if !p.enabled() {
		return 0
	}
	p.c.restores++
	return p.emit(Span{At: at, Kind: KindRestore, Component: component, Detail: reason})
}

// Violation traces a detected contract violation.
func (p *Plane) Violation(at sim.Time, component, kind, detail string, cause SpanID) SpanID {
	if !p.enabled() {
		return 0
	}
	p.c.violations++
	p.comp(component).violations++
	return p.emit(Span{At: at, Kind: KindViolation, Cause: cause, Component: component, To: kind, Detail: detail})
}

// Quarantine traces a component entering quarantine for n checks.
func (p *Plane) Quarantine(at sim.Time, component string, n int64, cause SpanID) SpanID {
	if !p.enabled() {
		return 0
	}
	p.c.quarantines++
	return p.emit(Span{At: at, Kind: KindQuarantine, Cause: cause, Component: component, N: n})
}

// FaultInject traces a fault application.
func (p *Plane) FaultInject(at sim.Time, kind, target, detail string) SpanID {
	if !p.enabled() {
		return 0
	}
	p.c.faultInjects++
	return p.emit(Span{At: at, Kind: KindFaultInject, Component: target, To: kind, Detail: detail})
}

// FaultClear traces a fault being lifted.
func (p *Plane) FaultClear(at sim.Time, kind, target, detail string, cause SpanID) SpanID {
	if !p.enabled() {
		return 0
	}
	p.c.faultClears++
	return p.emit(Span{At: at, Kind: KindFaultClear, Cause: cause, Component: target, To: kind, Detail: detail})
}

// FaultReapply traces an open fault following its target into a fresh
// incarnation after re-admission.
func (p *Plane) FaultReapply(at sim.Time, kind, target, detail string, cause SpanID) SpanID {
	if !p.enabled() {
		return 0
	}
	p.c.faultReapply++
	return p.emit(Span{At: at, Kind: KindFaultReapply, Cause: cause, Component: target, To: kind, Detail: detail})
}

// Downgrade traces a component stepping down to a cheaper service mode,
// either at admission ("downgrade-before-deny") or under guard
// enforcement.
func (p *Plane) Downgrade(at sim.Time, component, from, to, reason string, cause SpanID) SpanID {
	if !p.enabled() {
		return 0
	}
	p.c.downgrades++
	p.comp(component).transitions++
	return p.emit(Span{At: at, Kind: KindDowngrade, Cause: cause, Component: component, From: from, To: to, Detail: reason})
}

// Upgrade traces a degraded component being promoted back toward its
// full contract after capacity freed up.
func (p *Plane) Upgrade(at sim.Time, component, from, to, reason string, cause SpanID) SpanID {
	if !p.enabled() {
		return 0
	}
	p.c.upgrades++
	p.comp(component).transitions++
	return p.emit(Span{At: at, Kind: KindUpgrade, Cause: cause, Component: component, From: from, To: to, Detail: reason})
}

// Restart traces a supervised restart; n is the restart count within the
// supervisor's current window.
func (p *Plane) Restart(at sim.Time, component string, n int64, reason string, cause SpanID) SpanID {
	if !p.enabled() {
		return 0
	}
	p.c.restarts++
	return p.emit(Span{At: at, Kind: KindRestart, Cause: cause, Component: component, N: n, Detail: reason})
}

// Escalate traces a supervisor escalating past a component's exhausted
// restart budget; target names the escalation scope (the bundle, or the
// component itself when it has no bundle to restart).
func (p *Plane) Escalate(at sim.Time, component, target, reason string, cause SpanID) SpanID {
	if !p.enabled() {
		return 0
	}
	p.c.escalations++
	return p.emit(Span{At: at, Kind: KindEscalate, Cause: cause, Component: component, To: target, Detail: reason})
}

// Send traces one cross-node control message leaving a node. component
// names the subject (a component or topic), from/to carry the node names.
func (p *Plane) Send(at sim.Time, component, fromNode, toNode, detail string, cause SpanID) SpanID {
	if !p.enabled() {
		return 0
	}
	p.c.sends++
	return p.emit(Span{At: at, Kind: KindSend, Cause: cause, Component: component, From: fromNode, To: toNode, Detail: detail})
}

// Recv traces a cross-node control message arriving; its cause is the
// matching Send span, so Why-chains span the network hop.
func (p *Plane) Recv(at sim.Time, component, fromNode, toNode, detail string, cause SpanID) SpanID {
	if !p.enabled() {
		return 0
	}
	p.c.recvs++
	return p.emit(Span{At: at, Kind: KindRecv, Cause: cause, Component: component, From: fromNode, To: toNode, Detail: detail})
}

// Migrate traces a component moving between nodes.
func (p *Plane) Migrate(at sim.Time, component, fromNode, toNode, reason string, cause SpanID) SpanID {
	if !p.enabled() {
		return 0
	}
	p.c.migrations++
	p.comp(component).transitions++
	return p.emit(Span{At: at, Kind: KindMigrate, Cause: cause, Component: component, From: fromNode, To: toNode, Detail: reason})
}

// Partition traces a network partition opening; component names the cut.
func (p *Plane) Partition(at sim.Time, cut, detail string) SpanID {
	if !p.enabled() {
		return 0
	}
	p.c.partitions++
	return p.emit(Span{At: at, Kind: KindPartition, Component: cut, Detail: detail})
}

// Heal traces a partition healing; its cause is the Partition span.
func (p *Plane) Heal(at sim.Time, cut, detail string, cause SpanID) SpanID {
	if !p.enabled() {
		return 0
	}
	p.c.heals++
	return p.emit(Span{At: at, Kind: KindHeal, Cause: cause, Component: cut, Detail: detail})
}

// Place traces a cluster-admission placement decision.
func (p *Plane) Place(at sim.Time, component, node, reason string, cause SpanID) SpanID {
	if !p.enabled() {
		return 0
	}
	p.c.placements++
	return p.emit(Span{At: at, Kind: KindPlace, Cause: cause, Component: component, To: node, Detail: reason})
}

// NodeLoss traces a failure detector declaring a node lost; n is the
// number of placements stranded on it.
func (p *Plane) NodeLoss(at sim.Time, node string, n int64, detail string, cause SpanID) SpanID {
	if !p.enabled() {
		return 0
	}
	p.c.nodeLosses++
	return p.emit(Span{At: at, Kind: KindNodeLoss, Cause: cause, Component: node, N: n, Detail: detail})
}

// AdmitVerdict traces a Monte-Carlo admission verdict for a
// distribution-valued budget; mode names the admitted service mode and
// detail carries the probability estimate versus the declared p.
// Constant-budget admissions never emit this span, keeping legacy
// digests byte-identical.
func (p *Plane) AdmitVerdict(at sim.Time, component, mode, detail string, cause SpanID) SpanID {
	if !p.enabled() {
		return 0
	}
	p.c.admits++
	return p.emit(Span{At: at, Kind: KindAdmit, Cause: cause, Component: component, To: mode, Detail: detail})
}

// Forecast traces the predictive guard projecting a contract miss: the
// estimator's predicted miss probability crossed the component's
// declared tolerance, so the guard acts before the hard violation.
// Why-chains hang the ensuing downgrade off this span.
func (p *Plane) Forecast(at sim.Time, component, detail string, cause SpanID) SpanID {
	if !p.enabled() {
		return 0
	}
	p.c.forecasts++
	return p.emit(Span{At: at, Kind: KindForecast, Cause: cause, Component: component, Detail: detail})
}

// NoteDrain counts one worklist drain (one Resolve entry).
func (p *Plane) NoteDrain() {
	if !p.enabled() {
		return
	}
	p.c.resolveDrains++
}

// Plan-pipeline counters (counter-only, like NoteDrain: the plan fast
// path must emit exactly the spans the event path would, so its own
// bookkeeping never enters the digests).

// NotePlanCompile counts one composition-plan compilation.
func (p *Plane) NotePlanCompile() {
	if !p.enabled() {
		return
	}
	p.c.planCompiles++
}

// NotePlanCacheHit counts a deploy served from the compiled-plan cache.
func (p *Plane) NotePlanCacheHit() {
	if !p.enabled() {
		return
	}
	p.c.planCacheHits++
}

// NotePlanApply counts one whole-bundle plan fast-path apply.
func (p *Plane) NotePlanApply() {
	if !p.enabled() {
		return
	}
	p.c.planApplies++
}

// NotePlanFallback counts a deploy that compiled a plan but had to run
// the per-descriptor event path (guard failure, degraded-only
// feasibility, admission denial, ...).
func (p *Plane) NotePlanFallback() {
	if !p.enabled() {
		return
	}
	p.c.planFallbacks++
}

// ResolveRound records one resolution round over deact staged
// deactivation candidates and act staged activation candidates. The
// depth series samples only non-empty rounds (and is capped), keeping a
// steady-state resolve tick allocation-free; a span is emitted only at
// Full level.
func (p *Plane) ResolveRound(at sim.Time, deact, act int) {
	if !p.enabled() {
		return
	}
	p.c.resolveRounds++
	n := int64(deact + act)
	if n > 0 {
		if n > p.c.maxDepth {
			p.c.maxDepth = n
		}
		if p.depth.Len() < depthSampleCap {
			p.depth.Add(n)
		}
	}
	if p.level == Full {
		p.emit(Span{At: at, Kind: KindResolveRound, N: n})
	}
}

// comp returns the per-component counter cell, creating it on first use.
func (p *Plane) comp(name string) *compCounters {
	cc := p.perComp[name]
	if cc == nil {
		cc = &compCounters{}
		p.perComp[name] = cc
	}
	return cc
}

// Emitted is the lifetime span count.
func (p *Plane) Emitted() uint64 {
	if p == nil {
		return 0
	}
	return uint64(p.next)
}

// NextID is the ID the next emitted span will get; use it with
// SpansSince to watch a window.
func (p *Plane) NextID() SpanID {
	if p == nil {
		return 1
	}
	return p.next + 1
}

// Span returns the span with the given ID if it is still retained in
// the ring.
func (p *Plane) Span(id SpanID) (Span, bool) {
	if p == nil || id == 0 || id > p.next || id+SpanID(len(p.ring)) <= p.next {
		return Span{}, false
	}
	return p.ring[int((id-1)%SpanID(len(p.ring)))], true
}

// Spans copies every retained span, oldest first.
func (p *Plane) Spans() []Span {
	return p.SpansSince(1)
}

// SpansSince copies the retained spans with ID >= from, oldest first.
func (p *Plane) SpansSince(from SpanID) []Span {
	if p == nil || p.next == 0 {
		return nil
	}
	lo := SpanID(1)
	if p.next > SpanID(len(p.ring)) {
		lo = p.next - SpanID(len(p.ring)) + 1
	}
	if from > lo {
		lo = from
	}
	if lo > p.next {
		return nil
	}
	out := make([]Span, 0, p.next-lo+1)
	for id := lo; id <= p.next; id++ {
		out = append(out, p.ring[int((id-1)%SpanID(len(p.ring)))])
	}
	return out
}

// Last returns the most recent span about a component.
func (p *Plane) Last(component string) (Span, bool) {
	if p == nil {
		return Span{}, false
	}
	id, ok := p.last[component]
	if !ok {
		return Span{}, false
	}
	return p.Span(id)
}

// Why reconstructs the causal chain ending at a component's latest span,
// newest first: [what happened, what caused it, what caused that, ...].
// The chain stops at a root span or when a cause has been evicted from
// the ring.
func (p *Plane) Why(component string) []Span {
	s, ok := p.Last(component)
	if !ok {
		return nil
	}
	chain := []Span{s}
	for len(chain) < 64 && s.Cause != 0 {
		c, ok := p.Span(s.Cause)
		if !ok {
			break
		}
		chain = append(chain, c)
		s = c
	}
	return chain
}

// Digest is the hex SHA-256 of the full span stream including IDs and
// cause edges: two runs of the same seeded workload at the same
// sampling level must agree byte for byte. Sched and resolve-round
// spans are excluded from the fold, but they still consume IDs, so
// compare Digest values only across runs at one level (the golden
// fault-campaign digest is pinned at the default, Sampled); use
// StreamDigest for level- and engine-independent comparison.
func (p *Plane) Digest() string {
	if p == nil {
		return ""
	}
	return hex.EncodeToString(p.full.Sum(nil))
}

// StreamDigest is the hex SHA-256 of the span stream without IDs and
// cause edges — the engine-comparable digest the worklist/full-sweep
// differential tests pin.
func (p *Plane) StreamDigest() string {
	if p == nil {
		return ""
	}
	return hex.EncodeToString(p.stream.Sum(nil))
}

// Observer returns the read-only management view of the plane.
func (p *Plane) Observer() Observer { return Observer{p: p} }

// Observer is the read-only face of the plane — what System.Observer()
// hands to management clients (console commands, exporters). Level
// control is part of the management interface; everything else only
// reads.
type Observer struct{ p *Plane }

// Level returns the sampling level.
func (o Observer) Level() Level { return o.p.Level() }

// SetLevel switches the sampling level.
func (o Observer) SetLevel(l Level) { o.p.SetLevel(l) }

// Spans copies every retained span, oldest first.
func (o Observer) Spans() []Span { return o.p.Spans() }

// SpansSince copies retained spans with ID >= from.
func (o Observer) SpansSince(from SpanID) []Span { return o.p.SpansSince(from) }

// NextID is the ID the next span will get.
func (o Observer) NextID() SpanID { return o.p.NextID() }

// Span looks a span up by ID.
func (o Observer) Span(id SpanID) (Span, bool) { return o.p.Span(id) }

// Last returns a component's most recent span.
func (o Observer) Last(component string) (Span, bool) { return o.p.Last(component) }

// Why reconstructs a component's causal chain, newest first.
func (o Observer) Why(component string) []Span { return o.p.Why(component) }

// Snapshot assembles the stable-ordered metrics snapshot.
func (o Observer) Snapshot() Snapshot { return o.p.Snapshot() }

// Digest is the full span-stream digest (IDs and cause edges included).
func (o Observer) Digest() string { return o.p.Digest() }

// StreamDigest is the engine-comparable span-stream digest.
func (o Observer) StreamDigest() string { return o.p.StreamDigest() }

// Node reports the plane's federated identity name ("" single-node).
func (o Observer) Node() string { return o.p.Node() }

// LatencyStats summarises the non-empty latency histograms in the
// committed canonical kind order.
func (o Observer) LatencyStats() []LatencyStat { return o.p.LatencyStats() }

// SummaryJSON renders the stable latency-summary export.
func (o Observer) SummaryJSON() ([]byte, error) { return o.p.SummaryJSON() }

// FlightDumps returns the retained flight-recorder dumps, oldest first.
func (o Observer) FlightDumps() []FlightDump { return o.p.FlightDumps() }

// FlightDump looks a flight-recorder dump up by name.
func (o Observer) FlightDump(name string) (FlightDump, bool) { return o.p.FlightDump(name) }
