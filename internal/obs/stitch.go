// Cross-node trace stitching: spans get a (node, id) identity, planes
// record remote parents for spans whose cause crossed the simulated
// network, and StitchWhy/StitchDigest reconstruct and pin reaction
// trees that span node boundaries (a revocation on node A arriving as
// a control message and suspending a consumer on node C).
//
// The stitch protocol piggybacks on net.Message.Cause: the sender folds
// its local span ID into the message, the cluster delivery path emits a
// Recv span chained to it, and — via an ambient remote cause scoped
// around the node-local effect — every span the effect emits on the
// destination node's plane is linked back to the Recv span with an
// explicit (node, id) reference. Remote references live outside the
// span struct (a side table keyed by span ID), so single-node digests,
// ring layout, and the allocation-free emit path are untouched.

package obs

import (
	"crypto/sha256"
	"encoding/hex"
	"hash"
	"strconv"
)

// Ref names a span on a specific plane: the (node, id) federated span
// identity. The zero Ref means "no remote cause".
type Ref struct {
	// Node is the plane name (SetNode): "cluster", "n0", "n1", ...
	Node string
	// ID is the span's dense ID on that plane.
	ID SpanID
}

// IsZero reports whether the reference is empty.
func (r Ref) IsZero() bool { return r.ID == 0 }

// SetNode names the plane for federated span identity; node-qualified
// references (Ref, StitchedSpan) use this name.
func (p *Plane) SetNode(name string) {
	if p == nil {
		return
	}
	p.node = name
}

// Node reports the plane's federated identity name ("" when unset).
func (p *Plane) Node() string {
	if p == nil {
		return ""
	}
	return p.node
}

// SetRemoteCause installs the ambient remote cause: until the matching
// ClearRemoteCause, every span emitted without a local cause is linked
// to r in the remote-parent table. The cluster delivery path scopes it
// around node-local effects of an arrived message.
func (p *Plane) SetRemoteCause(r Ref) {
	if !p.enabled() {
		return
	}
	p.rcause = r
}

// ClearRemoteCause removes the ambient remote cause.
func (p *Plane) ClearRemoteCause() {
	if p == nil {
		return
	}
	p.rcause = Ref{}
}

// LinkRemote records r as the remote parent of local span id explicitly
// (the non-ambient form of SetRemoteCause).
func (p *Plane) LinkRemote(id SpanID, r Ref) {
	if !p.enabled() || id == 0 || r.IsZero() {
		return
	}
	p.linkRemote(id, r)
}

func (p *Plane) linkRemote(id SpanID, r Ref) {
	if p.remote == nil {
		p.remote = map[SpanID]Ref{}
	}
	// Prune references to spans long evicted from the ring, so the side
	// table stays bounded no matter how long the run is.
	if len(p.remote) > 2*len(p.ring) {
		for old := range p.remote {
			if old+SpanID(len(p.ring)) <= p.next {
				delete(p.remote, old)
			}
		}
	}
	p.remote[id] = r
}

// RemoteCause reports the remote parent recorded for local span id.
func (p *Plane) RemoteCause(id SpanID) (Ref, bool) {
	if p == nil {
		return Ref{}, false
	}
	r, ok := p.remote[id]
	return r, ok
}

// StitchedSpan is one element of a cross-node causal chain: a span plus
// the node (plane) it lives on.
type StitchedSpan struct {
	Node string
	Span Span
}

// stitchMax bounds a stitched chain, like Why's local bound.
const stitchMax = 128

// StitchWhy reconstructs the causal chain ending at component's latest
// span on the named plane, newest first, following local Cause edges
// and hopping planes through remote-parent references. The chain stops
// at a root span, an evicted span, or an unknown plane.
func StitchWhy(planes map[string]*Plane, node, component string) []StitchedSpan {
	p := planes[node]
	if p == nil {
		return nil
	}
	s, ok := p.Last(component)
	if !ok {
		return nil
	}
	return stitchChain(planes, node, s)
}

// stitchChain walks causes starting from span s on plane node.
func stitchChain(planes map[string]*Plane, node string, s Span) []StitchedSpan {
	p := planes[node]
	chain := []StitchedSpan{{Node: node, Span: s}}
	for len(chain) < stitchMax {
		if s.Cause != 0 {
			c, ok := p.Span(s.Cause)
			if !ok {
				break
			}
			chain = append(chain, StitchedSpan{Node: node, Span: c})
			s = c
			continue
		}
		// Root locally — hop the network if a remote parent is recorded.
		ref, ok := p.RemoteCause(s.ID)
		if !ok {
			break
		}
		rp := planes[ref.Node]
		if rp == nil {
			break
		}
		c, ok := rp.Span(ref.ID)
		if !ok {
			break
		}
		node, p, s = ref.Node, rp, c
		chain = append(chain, StitchedSpan{Node: node, Span: c})
	}
	return chain
}

// StitchDigest folds the stitched Why-chains of the given (node,
// component) roots — in the order given, which the caller must keep
// canonical — into one hex SHA-256. Each chain element is rendered
// without span IDs or cause values (the chain structure itself carries
// causality), so the digest is comparable across engines and shard
// counts, like StreamDigest.
func StitchDigest(planes map[string]*Plane, roots []StitchRoot) string {
	h := sha256.New()
	var scratch []byte
	for _, r := range roots {
		scratch = scratch[:0]
		scratch = append(scratch, r.Node...)
		scratch = append(scratch, '/')
		scratch = append(scratch, r.Component...)
		scratch = append(scratch, ":\n"...)
		h.Write(scratch)
		for _, e := range StitchWhy(planes, r.Node, r.Component) {
			writeStitched(h, &scratch, e)
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// StitchRoot names a stitch root: a component on a node's plane.
type StitchRoot struct {
	Node      string
	Component string
}

// writeStitched renders one chain element in the ID-free stream form,
// prefixed by its node.
func writeStitched(h hash.Hash, scratch *[]byte, e StitchedSpan) {
	b := (*scratch)[:0]
	b = append(b, ' ')
	b = append(b, e.Node...)
	b = append(b, '|')
	b = strconv.AppendInt(b, int64(e.Span.At), 10)
	b = append(b, '|')
	b = append(b, e.Span.Kind.String()...)
	b = append(b, '|')
	b = append(b, e.Span.Component...)
	b = append(b, '|')
	b = append(b, e.Span.From...)
	b = append(b, '|')
	b = append(b, e.Span.To...)
	b = append(b, '|')
	b = strconv.AppendInt(b, e.Span.N, 10)
	b = append(b, '|')
	b = append(b, e.Span.Detail...)
	b = append(b, '\n')
	h.Write(b)
	*scratch = b
}
