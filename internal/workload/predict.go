package workload

import (
	"time"

	"repro/internal/contract"
	"repro/internal/core"
	"repro/internal/descriptor"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/osgi"
	"repro/internal/rtos"
	"repro/internal/sim"
)

// Predictive-admission ablation: the same execution-time drift hits the
// same stochastic-budget component twice — once under the reactive guard
// (measure, confirm over two windows, then step down) and once with the
// forecasting estimator on top (project the trend, step down before the
// first hard miss). The drift is deliberately steep near the enforcement
// limit: by the time a reactive confirmation completes, the kernel has
// already recorded deadline misses, while the projection sees the
// crossing PredictLead windows out.

// PredictCalcXML is the drifting component: a 1 kHz job at 55% of its
// period with a distribution-valued budget (deadline met with P ≥ 0.99)
// and a generously-contracted eco fallback the guard can park it in
// while the drift plays out.
const PredictCalcXML = `<component name="calc" desc="drifting computing job" type="periodic" cpuusage="0.55">
  <implementation bincode="rtai.demo.PredictCalc"/>
  <periodictask frequence="1000" runoncup="0" priority="1"/>
  <budget dist="normal(0.55,0.03)" p="0.99"/>
  <mode name="eco" frequence="250" cpuusage="0.45"/>
  <property name="drcom.exectime.us" type="Integer" value="550"/>
</component>`

// Predict-campaign timeline (offsets from scenario start).
const (
	// PredictDriftStart is when the execution-time ramp opens; the
	// estimator has had 50 windows of stationary baseline by then.
	PredictDriftStart = 500 * time.Millisecond
	// PredictDriftWindow is the ramp duration.
	PredictDriftWindow = 150 * time.Millisecond
	// PredictDriftFactor is the ramp's final execution-time multiplier.
	PredictDriftFactor = 3.0
)

// PredictCampaign scripts the slow-burn drift against calc.
func PredictCampaign() fault.Campaign {
	return fault.Campaign{
		Name: "calc-exec-drift",
		Faults: []fault.Fault{{
			Kind:   fault.ExecDrift,
			Target: "calc",
			At:     PredictDriftStart,
			For:    PredictDriftWindow,
			Factor: PredictDriftFactor,
		}},
	}
}

// PredictConfig parameterises one predict-campaign run.
type PredictConfig struct {
	// Seed drives all randomness (default 1).
	Seed uint64
	// RunFor is the total simulated duration (default 1.2 s).
	RunFor time.Duration
	// Predictive enables the forecasting estimator on top of the
	// reactive guard; false is the reactive-only ablation baseline.
	Predictive bool
	// Guard overrides the guard options. Predict is forced to match
	// Predictive; PredictLead defaults to 6 here (the drift is steep).
	Guard contract.Options
	// NumCPUs sizes the simulated kernel (default 4, so shard counts up
	// to 4 partition real work).
	NumCPUs int
	// Shards runs the kernel and the DRCR sharded; 0 or 1 selects the
	// sequential engines. The campaign digests must not depend on it.
	Shards int
	// Replicas deploys background calc/disp pairs on CPUs 1..NumCPUs-1;
	// ignored when NumCPUs == 1 (default 3, one per remaining CPU).
	Replicas int
	// ObsLevel is the observability sampling level (zero value: Sampled).
	ObsLevel obs.Level
}

func (c *PredictConfig) applyDefaults() {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.RunFor <= 0 {
		c.RunFor = 1200 * time.Millisecond
	}
	if c.NumCPUs <= 0 {
		c.NumCPUs = 4
	}
	if c.NumCPUs == 1 {
		c.Replicas = 0
	} else if c.Replicas == 0 {
		c.Replicas = 3
	}
	c.Guard.Predict = c.Predictive
	if c.Guard.PredictLead == 0 {
		c.Guard.PredictLead = 6
	}
	if c.Guard.Quarantine == 0 {
		// The default 8-check hold expires mid-drift: calc gets promoted
		// back to full rate while the ramp is still open and racks up a
		// burst of misses in BOTH ablation arms, drowning the signal. 16
		// checks (160 ms) holds the downgrade until the drift has cleared.
		c.Guard.Quarantine = 16
	}
}

// PredictResult captures one run of the predict campaign.
type PredictResult struct {
	Predictive bool

	// HardMisses is calc's deadline misses + skipped releases summed
	// across every task incarnation; FirstMissAt is when the first one
	// was observed (zero = never).
	HardMisses  uint64
	FirstMissAt sim.Time
	// ForecastAt is the first forecast record (zero = none fired).
	ForecastAt sim.Time
	// Availability is calc's fraction of the run spent ACTIVE.
	Availability float64

	Downgrades        int
	PredictDowngrades int
	Revokes           int

	TraceDigest string
	// SpanDigest is the full span-trace digest; StreamDigest the ID-free
	// engine/shard-comparable variant. Same seed + same config ⇒
	// byte-identical, at any shard count.
	SpanDigest   string
	StreamDigest string
	SpanCount    uint64

	Forecasts  []contract.Forecast
	GuardTrace []contract.Record
	Final      []core.Info
}

// RunPredictCampaign executes the drift campaign under the configured
// guard and reports misses, forecasts, and step-down activity.
func RunPredictCampaign(cfg PredictConfig) (PredictResult, error) {
	cfg.applyDefaults()

	fw := osgi.NewFramework()
	k := rtos.NewKernel(rtos.Config{Seed: cfg.Seed, NumCPUs: cfg.NumCPUs, Shards: cfg.Shards})
	d, err := core.New(fw, k, core.Options{
		Shards: cfg.Shards,
		Obs:    obs.NewPlane(obs.Options{Level: cfg.ObsLevel}),
	})
	if err != nil {
		return PredictResult{}, err
	}
	defer d.Close()

	if err := d.RegisterBody("rtai.demo.PredictCalc", func(*descriptor.Component) rtos.Body {
		return func(*rtos.JobContext) {}
	}); err != nil {
		return PredictResult{}, err
	}
	// The replica load bodies must actually write their outports: with the
	// default no-op body the guard flags every replica port-stale and the
	// revoke/restore churn buries the ablation signal.
	if err := d.RegisterBody("rtai.demo.Load", func(c *descriptor.Component) rtos.Body {
		if len(c.OutPorts) == 0 {
			return func(*rtos.JobContext) {}
		}
		topic := c.OutPorts[0].Name
		return func(j *rtos.JobContext) {
			if shm, err := j.Kernel.IPC().SHM(topic); err == nil {
				_ = shm.Set(0, int64(j.Now))
			}
		}
	}); err != nil {
		return PredictResult{}, err
	}
	desc, err := descriptor.Parse(PredictCalcXML)
	if err != nil {
		return PredictResult{}, err
	}
	if err := d.Deploy(desc); err != nil {
		return PredictResult{}, err
	}
	if err := deployReplicas(d, cfg.Replicas, cfg.NumCPUs); err != nil {
		return PredictResult{}, err
	}

	inj, err := fault.New(d, fw)
	if err != nil {
		return PredictResult{}, err
	}
	defer inj.Close()
	if err := inj.Install(PredictCampaign()); err != nil {
		return PredictResult{}, err
	}

	guard, err := contract.New(d, cfg.Guard)
	if err != nil {
		return PredictResult{}, err
	}
	if err := guard.Start(); err != nil {
		return PredictResult{}, err
	}
	defer guard.Stop()

	// Miss meter: kernel counters die with each task incarnation (a
	// downgrade swaps the task), so poll deltas every millisecond with
	// reset detection, like the guard's own baselines.
	var missTotal, missLast uint64
	var firstMiss sim.Time
	clock := k.Clock()
	var meter func(sim.Time)
	meter = func(now sim.Time) {
		if task, ok := k.Task("calc"); ok {
			m := task.Metrics()
			cur := m.Misses + m.Skips
			if cur < missLast {
				missLast = 0 // fresh incarnation
			}
			if cur > missLast {
				missTotal += cur - missLast
				if firstMiss == 0 {
					firstMiss = now
				}
				missLast = cur
			}
		} else {
			missLast = 0
		}
		_, _ = clock.After(time.Millisecond, "predict:miss-meter", meter)
	}
	if _, err := clock.After(time.Millisecond, "predict:miss-meter", meter); err != nil {
		return PredictResult{}, err
	}

	if err := k.Run(cfg.RunFor); err != nil {
		return PredictResult{}, err
	}

	res := PredictResult{
		Predictive:   cfg.Predictive,
		HardMisses:   missTotal,
		FirstMissAt:  firstMiss,
		TraceDigest:  guard.TraceDigest(),
		SpanDigest:   d.Obs().Digest(),
		StreamDigest: d.Obs().StreamDigest(),
		SpanCount:    d.Obs().Emitted(),
		Forecasts:    guard.Forecasts(),
		GuardTrace:   guard.Trace(),
		Final:        d.Components(),
	}
	for _, r := range res.GuardTrace {
		switch r.Action {
		case "forecast":
			if res.ForecastAt == 0 {
				res.ForecastAt = r.At
			}
		case "downgrade":
			res.Downgrades++
		case "predict-downgrade":
			res.PredictDowngrades++
		case "revoke":
			res.Revokes++
		}
	}
	res.Availability = availability(d.Events(), k.Now())["calc"]
	return res, nil
}
