package workload

import (
	"time"

	"repro/internal/contract"
	"repro/internal/core"
	"repro/internal/descriptor"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/osgi"
	"repro/internal/rtos"
	"repro/internal/sim"
)

// Fault-campaign scenario: the §4.2 latency application under a scripted
// contract breach. A deterministic fault inflates calc's execution time
// far past its declared cpuusage budget; with the contract guard enabled
// the violation is detected, calc's budget revoked (disp cascades to
// UNSATISFIED), and — after the fault clears and the quarantine is
// served — both components return to ACTIVE in dependency order.

// Standard campaign timeline (offsets from scenario start).
const (
	// FaultStart is when the standard campaign's exec-inflation opens.
	FaultStart = 300 * time.Millisecond
	// FaultDuration is how long it stays open.
	FaultDuration = 400 * time.Millisecond
	// FaultFactor is the execution-time multiplier: calc's nominal 30 µs
	// per 1 ms period (3% CPU) becomes 120 µs (12%), far past the 0.05
	// declared budget and the guard's 1.5× tolerance.
	FaultFactor = 4.0
)

// StandardCampaign is the reference fault script: one execution-time
// inflation against calc.
func StandardCampaign() fault.Campaign {
	return fault.Campaign{
		Name: "calc-overrun",
		Faults: []fault.Fault{{
			Kind:   fault.ExecInflate,
			Target: "calc",
			At:     FaultStart,
			For:    FaultDuration,
			Factor: FaultFactor,
		}},
	}
}

// FaultCampaignConfig parameterises one fault-campaign run.
type FaultCampaignConfig struct {
	// Seed drives all randomness (default 1).
	Seed uint64
	// RunFor is the total simulated duration (default 1.2 s, enough for
	// the standard campaign's quarantine/backoff cycles to settle).
	RunFor time.Duration
	// Guarded enables the contract guard (enforcing). False runs the
	// same campaign unprotected — the ablation baseline.
	Guarded bool
	// Campaign overrides the standard fault script.
	Campaign *fault.Campaign
	// Guard overrides the guard options (zero value = defaults).
	Guard contract.Options
	// NumCPUs sizes the simulated kernel (default 1 — the paper's
	// single-CPU scenario, byte-identical to earlier revisions).
	NumCPUs int
	// Shards runs the kernel and the DRCR sharded (rtos.Config.Shards /
	// core.Options.Shards); 0 or 1 selects the sequential engines. The
	// campaign digests must not depend on it.
	Shards int
	// Replicas deploys that many background calc/disp pairs spread over
	// CPUs 1..NumCPUs-1, giving multi-CPU campaigns real per-shard
	// scheduling work. Ignored when NumCPUs == 1.
	Replicas int
	// ObsLevel is the observability sampling level (zero value: Sampled).
	ObsLevel obs.Level
	// SchedFunnel forces the funnel scheduler bridge on sharded kernels
	// (the per-shard emitters' differential reference).
	SchedFunnel bool
}

func (c *FaultCampaignConfig) applyDefaults() {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.RunFor <= 0 {
		c.RunFor = 1200 * time.Millisecond
	}
	if c.NumCPUs <= 0 {
		c.NumCPUs = 1
	}
	if c.NumCPUs == 1 {
		c.Replicas = 0
	}
}

// FaultCampaignResult captures everything observable about one run.
type FaultCampaignResult struct {
	Campaign string

	// Guard-side observations (empty when unguarded).
	Violations  []contract.Violation
	GuardTrace  []contract.Record
	TraceDigest string

	InjectTrace []fault.Record
	Events      []core.Event
	// Final is the component snapshot at the end of the run.
	Final []core.Info

	// SpanDigest is the observability plane's full span-trace digest
	// (IDs and cause edges included) at the end of the run, before
	// teardown; same seed + same campaign ⇒ byte-identical. SpanCount is
	// the number of spans behind it, and Obs the metric snapshot.
	SpanDigest string
	// StreamDigest is the ID-free engine/shard-comparable variant.
	StreamDigest string
	SpanCount    uint64
	Obs          obs.Snapshot

	// Containment: disp's dispatch latencies across the whole run,
	// collected in the functional routine so they survive task
	// recreation. DispMaxAbs is the worst magnitude in nanoseconds.
	DispSamples []int64
	DispMaxAbs  int64

	// Reaction timeline.
	FirstViolationAt sim.Time
	RevokeCount      int
	RestoreCount     int
	// RecoveredAt is when disp last returned to ACTIVE (the dependant's
	// final reactivation); zero if it never did.
	RecoveredAt sim.Time
	// DetectionLatency is first violation minus fault start; MTTR is the
	// final recovery minus fault clear. Negative values mean "never".
	DetectionLatency time.Duration
	MTTR             time.Duration
}

// RunFaultCampaign executes the §4.2 application under a fault campaign,
// optionally protected by the contract guard, and reports the violation,
// containment, and recovery record. Same seed + same campaign ⇒
// byte-identical guard trace (see TraceDigest).
func RunFaultCampaign(cfg FaultCampaignConfig) (FaultCampaignResult, error) {
	cfg.applyDefaults()
	campaign := StandardCampaign()
	if cfg.Campaign != nil {
		campaign = *cfg.Campaign
	}

	fw := osgi.NewFramework()
	k := rtos.NewKernel(rtos.Config{Seed: cfg.Seed, NumCPUs: cfg.NumCPUs, Shards: cfg.Shards})
	d, err := core.New(fw, k, core.Options{
		Shards: cfg.Shards,
		Obs:    obs.NewPlane(obs.Options{Level: cfg.ObsLevel, SchedFunnel: cfg.SchedFunnel}),
	})
	if err != nil {
		return FaultCampaignResult{}, err
	}
	defer d.Close()

	var dispLat []int64
	err = d.RegisterBody("rtai.demo.Calculation", func(*descriptor.Component) rtos.Body {
		return func(j *rtos.JobContext) {
			if shm, err := j.Kernel.IPC().SHM(LatencySHM); err == nil {
				_ = shm.Set(0, int64(j.Now.Sub(j.Nominal)))
			}
		}
	})
	if err != nil {
		return FaultCampaignResult{}, err
	}
	err = d.RegisterBody("rtai.demo.Display", func(*descriptor.Component) rtos.Body {
		return func(j *rtos.JobContext) {
			if shm, err := j.Kernel.IPC().SHM(LatencySHM); err == nil {
				_, _ = shm.Get(0)
			}
			dispLat = append(dispLat, int64(j.Now.Sub(j.Nominal)))
		}
	})
	if err != nil {
		return FaultCampaignResult{}, err
	}

	for _, src := range []string{CalcXML, DisplayXML} {
		desc, err := descriptor.Parse(src)
		if err != nil {
			return FaultCampaignResult{}, err
		}
		if err := d.Deploy(desc); err != nil {
			return FaultCampaignResult{}, err
		}
	}
	if err := deployReplicas(d, cfg.Replicas, cfg.NumCPUs); err != nil {
		return FaultCampaignResult{}, err
	}

	inj, err := fault.New(d, fw)
	if err != nil {
		return FaultCampaignResult{}, err
	}
	defer inj.Close()
	if err := inj.Install(campaign); err != nil {
		return FaultCampaignResult{}, err
	}

	var guard *contract.Guard
	if cfg.Guarded {
		guard, err = contract.New(d, cfg.Guard)
		if err != nil {
			return FaultCampaignResult{}, err
		}
		if err := guard.Start(); err != nil {
			return FaultCampaignResult{}, err
		}
		defer guard.Stop()
	}

	if err := k.Run(cfg.RunFor); err != nil {
		return FaultCampaignResult{}, err
	}

	res := FaultCampaignResult{
		Campaign:    campaign.Name,
		InjectTrace: inj.Trace(),
		Events:      d.Events(),
		Final:       d.Components(),
		DispSamples: dispLat,
		// Captured before the deferred Close/inj.Close so teardown spans
		// don't enter the pinned digest.
		SpanDigest:   d.Obs().Digest(),
		StreamDigest: d.Obs().StreamDigest(),
		SpanCount:    d.Obs().Emitted(),
		Obs:          d.Obs().Snapshot(),
	}
	for _, v := range dispLat {
		if v < 0 {
			v = -v
		}
		if v > res.DispMaxAbs {
			res.DispMaxAbs = v
		}
	}
	res.DetectionLatency = -1
	res.MTTR = -1
	if guard != nil {
		res.Violations = guard.Violations()
		res.GuardTrace = guard.Trace()
		res.TraceDigest = guard.TraceDigest()
		for _, r := range res.GuardTrace {
			switch r.Action {
			case "revoke":
				res.RevokeCount++
			case "restore":
				res.RestoreCount++
			}
		}
		if len(res.Violations) > 0 {
			res.FirstViolationAt = res.Violations[0].At
			for _, r := range res.InjectTrace {
				if r.Action == "inject" {
					res.DetectionLatency = res.FirstViolationAt.Sub(r.At)
					break
				}
			}
		}
	}
	faultClear := sim.Time(0)
	for _, f := range campaign.Faults {
		if f.For > 0 {
			if end := sim.Time(f.At + f.For); end > faultClear {
				faultClear = end
			}
		}
	}
	for _, ev := range res.Events {
		if ev.Component == "disp" && ev.To == core.Active {
			res.RecoveredAt = ev.At
		}
	}
	if res.RecoveredAt > faultClear && faultClear > 0 {
		res.MTTR = res.RecoveredAt.Sub(faultClear)
	}
	return res, nil
}
