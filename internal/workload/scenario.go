package workload

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/descriptor"
	"repro/internal/manifest"
	"repro/internal/osgi"
	"repro/internal/policy"
	"repro/internal/rtos"
)

// ScenarioStep is one observed point of the §4.3 dynamicity scenario.
type ScenarioStep struct {
	At          string
	Description string
	CalcState   string
	DispState   string
}

// ScenarioResult is the full §4.3 walk-through.
type ScenarioResult struct {
	Steps  []ScenarioStep
	Events []core.Event
}

// RunDynamicityScenario executes the paper's §4.3 scenario through real
// bundles: Display installed first (unsatisfied), Calculation's bundle
// started (both resolve and activate after the internal and customized
// resolving services agree), then Calculation stopped (Display is found
// unsatisfied and disabled).
func RunDynamicityScenario(seed uint64) (ScenarioResult, error) {
	fw := osgi.NewFramework()
	k := rtos.NewKernel(rtos.Config{Seed: seed})
	d, err := core.New(fw, k, core.Options{})
	if err != nil {
		return ScenarioResult{}, err
	}
	defer d.Close()

	// The paper's external customized resolving service; in the
	// simulation both resolving services answer true (§4.3).
	if _, err := fw.RegisterService(
		[]string{policy.ServiceInterface},
		policy.Resolver(policy.Static{AdmitAll: true, Label: "customized"}),
		nil,
	); err != nil {
		return ScenarioResult{}, err
	}

	var res ScenarioResult
	note := func(step, desc string) {
		s := ScenarioStep{At: step, Description: desc, CalcState: "-", DispState: "-"}
		if info, ok := d.Component("calc"); ok {
			s.CalcState = info.State.String()
		}
		if info, ok := d.Component("disp"); ok {
			s.DispState = info.State.String()
		}
		res.Steps = append(res.Steps, s)
	}

	mkBundle := func(symbolic, res, xmlSrc string) (*osgi.Bundle, error) {
		m := manifest.New(symbolic, manifest.MustParseVersion("1.0"))
		m.DRComComponents = []string{res}
		return fw.Install(osgi.Definition{
			Manifest:  m,
			Resources: map[string]string{res: xmlSrc},
		})
	}

	dispBundle, err := mkBundle("rtai.demo.display", "OSGI-INF/disp.xml", DisplayXML)
	if err != nil {
		return ScenarioResult{}, err
	}
	calcBundle, err := mkBundle("rtai.demo.calc", "OSGI-INF/calc.xml", CalcXML)
	if err != nil {
		return ScenarioResult{}, err
	}

	if err := dispBundle.Start(); err != nil {
		return ScenarioResult{}, err
	}
	note("1", "Display bundle started; Calculation absent")
	if st := mustState(d, "disp"); st != core.Unsatisfied {
		return res, fmt.Errorf("workload: step 1: disp = %v, want UNSATISFIED", st)
	}

	if err := calcBundle.Start(); err != nil {
		return ScenarioResult{}, err
	}
	note("2", "Calculation bundle started; resolving services consulted")
	if st := mustState(d, "calc"); st != core.Active {
		return res, fmt.Errorf("workload: step 2: calc = %v, want ACTIVE", st)
	}
	if st := mustState(d, "disp"); st != core.Active {
		return res, fmt.Errorf("workload: step 2: disp = %v, want ACTIVE", st)
	}

	if err := k.Run(500 * time.Millisecond); err != nil {
		return ScenarioResult{}, err
	}
	note("3", "system running; both RT tasks executing")

	if err := calcBundle.Stop(); err != nil {
		return ScenarioResult{}, err
	}
	note("4", "Calculation bundle stopped; DRCR re-resolves")
	if st := mustState(d, "disp"); st != core.Unsatisfied {
		return res, fmt.Errorf("workload: step 4: disp = %v, want UNSATISFIED", st)
	}

	if err := calcBundle.Start(); err != nil {
		return ScenarioResult{}, err
	}
	note("5", "Calculation bundle restarted; Display reactivates")
	if st := mustState(d, "disp"); st != core.Active {
		return res, fmt.Errorf("workload: step 5: disp = %v, want ACTIVE", st)
	}

	res.Events = d.Events()
	return res, nil
}

func mustState(d *core.DRCR, name string) core.State {
	if info, ok := d.Component(name); ok {
		return info.State
	}
	return 0
}

// OversubscribedSet builds n periodic component descriptors on one CPU
// whose total declared budget is `total` (may exceed 1 to provoke
// admission denials). Components are named c00, c01, … with descending
// urgency.
func OversubscribedSet(n int, total float64) ([]*descriptor.Component, error) {
	if n <= 0 || n > 100 {
		return nil, fmt.Errorf("workload: n %d out of range", n)
	}
	each := total / float64(n)
	out := make([]*descriptor.Component, 0, n)
	for i := 0; i < n; i++ {
		src := fmt.Sprintf(`<component name="c%02d" type="periodic" cpuusage="%.4f">
		  <implementation bincode="load.Task"/>
		  <periodictask frequence="100" runoncup="0" priority="%d"/>
		</component>`, i, each, i+1)
		c, err := descriptor.Parse(src)
		if err != nil {
			return nil, err
		}
		out = append(out, c)
	}
	return out, nil
}
