package workload

import (
	"testing"
	"time"
)

// seedTreeGoldens are the SHA-256 digests of the smartcamera reference
// scenario produced by the pre-optimisation tree (the growth seed),
// captured before the allocation-free hot path landed. Matching them
// byte-for-byte proves the lazy-cancel event queue, the pooled jobs, and
// the incremental global view changed no observable behaviour: not one
// trace event, latency sample, lifecycle transition, or admission reason.
var seedTreeGoldens = []struct {
	seed    uint64
	trace   string
	metrics string
	events  uint64
}{
	{
		seed:    7,
		trace:   "facc50c4b2900f5c42e99e88f1696c8df71bd8a92d3704bd0914432d59abc811",
		metrics: "26a975b35d7dfa44ffe907223ad25761ec711af05f49963aaf0c9792725fb245",
		events:  1063,
	},
	{
		seed:    42,
		trace:   "aa6cba283d4cc17e51dc64ceacd786eb4bbf675be8026b39c4b17e64d39e7dd6",
		metrics: "9079f085f9af9c598f2c45168a1452992cc0a2375a4d9725934cfae72ff1eb64",
		events:  1062,
	},
}

const digestRunFor = 2 * time.Second

// TestCameraDigestMatchesSeedTree guards same-seed reproducibility across
// revisions: the current tree must produce byte-identical traces and
// metrics to the growth seed for the reference seeds.
func TestCameraDigestMatchesSeedTree(t *testing.T) {
	for _, g := range seedTreeGoldens {
		d, err := RunCameraDigest(g.seed, digestRunFor)
		if err != nil {
			t.Fatalf("seed %d: %v", g.seed, err)
		}
		if d.Trace != g.trace {
			t.Errorf("seed %d: trace digest %s, want seed-tree %s", g.seed, d.Trace, g.trace)
		}
		if d.Metrics != g.metrics {
			t.Errorf("seed %d: metrics digest %s, want seed-tree %s", g.seed, d.Metrics, g.metrics)
		}
		if d.Events != g.events {
			t.Errorf("seed %d: %d events fired, want %d", g.seed, d.Events, g.events)
		}
	}
}

// TestCameraDigestRepeatable runs the same seed twice in one process and
// demands identical digests — the within-process half of determinism.
func TestCameraDigestRepeatable(t *testing.T) {
	first, err := RunCameraDigest(7, digestRunFor)
	if err != nil {
		t.Fatal(err)
	}
	second, err := RunCameraDigest(7, digestRunFor)
	if err != nil {
		t.Fatal(err)
	}
	if first != second {
		t.Errorf("same seed diverged:\n  first  %+v\n  second %+v", first, second)
	}
}
