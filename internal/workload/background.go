package workload

import (
	"fmt"
	"time"

	"repro/internal/rtos"
)

// LinuxPriority is the priority band the simulated non-real-time (Linux)
// side runs in: far below every RT component, mirroring RTAI's dual-
// kernel guarantee that RT tasks outrank all Linux processes.
const LinuxPriority = 1_000_000

// BackgroundLoad is a set of lowest-priority tasks standing in for the
// stress commands of §4.4 ("we use the following three commands accompany
// with our OSGi platform. The CPU usage is close to 100%"). They soak
// whatever CPU the RT set leaves idle, but — being below every RT
// priority — can never delay an RT dispatch: the mechanical half of the
// stress-mode story (the timing-model half lives in rtos.StressTiming).
type BackgroundLoad struct {
	tasks []*rtos.Task
}

// NewBackgroundLoad creates n hog tasks on the given CPU with combined
// demand ~100%. Task names are "hogN".
func NewBackgroundLoad(k *rtos.Kernel, cpuID, n int) (*BackgroundLoad, error) {
	if n <= 0 || n > 99 {
		return nil, fmt.Errorf("workload: background load n %d out of range", n)
	}
	period := 10 * time.Millisecond
	exec := period / time.Duration(n) // sums to ~the whole period
	bl := &BackgroundLoad{}
	for i := 0; i < n; i++ {
		t, err := k.CreateTask(rtos.TaskSpec{
			Name:     fmt.Sprintf("hog%d", i),
			Type:     rtos.Periodic,
			CPU:      cpuID,
			Priority: LinuxPriority + i,
			Period:   period,
			ExecTime: exec,
		})
		if err != nil {
			bl.Stop()
			return nil, err
		}
		bl.tasks = append(bl.tasks, t)
	}
	return bl, nil
}

// Start begins the load.
func (b *BackgroundLoad) Start() error {
	for _, t := range b.tasks {
		if err := t.Start(); err != nil {
			return err
		}
	}
	return nil
}

// Stop deletes the load tasks.
func (b *BackgroundLoad) Stop() {
	for _, t := range b.tasks {
		_ = t.Delete()
	}
	b.tasks = nil
}

// Tasks exposes the hog tasks (for assertions).
func (b *BackgroundLoad) Tasks() []*rtos.Task {
	out := make([]*rtos.Task, len(b.tasks))
	copy(out, b.tasks)
	return out
}
