package workload

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/descriptor"
	"repro/internal/osgi"
	"repro/internal/rtos"
)

// The smart-camera pipeline of the paper's motivating ARFLEX scenario
// (examples/smartcamera), reused here as the reference workload for
// determinism digests: three periodic components over two SHM ports with
// real data flow, lifecycle churn, and a management command mid-run.
const (
	CameraXML = `<component name="camera" desc="smart camera controller" type="periodic" cpuusage="0.1">
  <implementation bincode="ua.pats.demo.smartcamera.RTComponent"/>
  <periodictask frequence="100" runoncup="0" priority="2"/>
  <outport name="frames" interface="RTAI.SHM" type="Byte" size="400"/>
  <property name="gain" type="Integer" value="1"/>
</component>`

	ROIXML = `<component name="roisel" desc="region of interest selector" type="periodic" cpuusage="0.05">
  <implementation bincode="ua.pats.demo.smartcamera.ROISelector"/>
  <periodictask frequence="100" runoncup="0" priority="3"/>
  <inport name="frames" interface="RTAI.SHM" type="Byte" size="400"/>
  <outport name="roi" interface="RTAI.SHM" type="Integer" size="4"/>
</component>`

	PanelXML = `<component name="panel" desc="operator display" type="periodic" cpuusage="0.01">
  <implementation bincode="ua.pats.demo.smartcamera.Panel"/>
  <periodictask frequence="10" runoncup="0" priority="4"/>
  <inport name="roi" interface="RTAI.SHM" type="Integer" size="4"/>
</component>`
)

// CameraDigest summarises one reference run: a SHA-256 over the scheduler
// trace and one over the observable metrics (task stats, component states,
// lifecycle transitions). Two runs with the same seed must agree byte for
// byte, and a refactor of the simulation core must reproduce the digests
// captured before it.
type CameraDigest struct {
	Trace   string // hex SHA-256 of the formatted scheduler trace
	Metrics string // hex SHA-256 of the formatted metrics/state report
	Events  uint64 // total simulation events fired
}

// RunCameraDigest executes the smart-camera reference workload for the
// given simulated duration and digests everything observable about it.
func RunCameraDigest(seed uint64, runFor time.Duration) (CameraDigest, error) {
	fw := osgi.NewFramework()
	k := rtos.NewKernel(rtos.Config{Seed: seed})
	tr := k.StartTrace(0)
	d, err := core.New(fw, k, core.Options{})
	if err != nil {
		return CameraDigest{}, err
	}
	defer d.Close()

	register := func(bincode string, f core.BodyFactory) error {
		return d.RegisterBody(bincode, f)
	}
	if err := register("ua.pats.demo.smartcamera.RTComponent", func(*descriptor.Component) rtos.Body {
		return func(j *rtos.JobContext) {
			shm, err := j.Kernel.IPC().SHM("frames")
			if err != nil {
				return
			}
			_ = shm.Set(int(j.Index%400), 200)
		}
	}); err != nil {
		return CameraDigest{}, err
	}
	if err := register("ua.pats.demo.smartcamera.ROISelector", func(*descriptor.Component) rtos.Body {
		return func(j *rtos.JobContext) {
			frames, err := j.Kernel.IPC().SHM("frames")
			if err != nil {
				return
			}
			roi, err := j.Kernel.IPC().SHM("roi")
			if err != nil {
				return
			}
			data := frames.ReadAll()
			best, bestIdx := int64(-1), 0
			for i, v := range data {
				if v > best {
					best, bestIdx = v, i
				}
			}
			_ = roi.Set(0, int64(bestIdx%20))
			_ = roi.Set(1, int64(bestIdx/20))
		}
	}); err != nil {
		return CameraDigest{}, err
	}
	if err := register("ua.pats.demo.smartcamera.Panel", func(*descriptor.Component) rtos.Body {
		return func(j *rtos.JobContext) {
			roi, err := j.Kernel.IPC().SHM("roi")
			if err != nil {
				return
			}
			_, _ = roi.Get(0)
			_, _ = roi.Get(1)
		}
	}); err != nil {
		return CameraDigest{}, err
	}

	for _, src := range []string{CameraXML, ROIXML, PanelXML} {
		desc, err := descriptor.Parse(src)
		if err != nil {
			return CameraDigest{}, err
		}
		if err := d.Deploy(desc); err != nil {
			return CameraDigest{}, err
		}
	}

	half := runFor / 2
	if err := k.Run(half); err != nil {
		return CameraDigest{}, err
	}
	// Mid-run churn: a management command, a suspend/resume cycle, and a
	// lifecycle round trip, so the digest covers the DRCR paths too.
	if mgmt, ok := d.Management("camera"); ok {
		_ = mgmt.SetProperty("gain", "2")
	}
	if err := d.Suspend("roisel"); err != nil {
		return CameraDigest{}, err
	}
	if err := k.Run(runFor - half); err != nil {
		return CameraDigest{}, err
	}
	if err := d.Resume("roisel"); err != nil {
		return CameraDigest{}, err
	}
	if err := k.Run(half); err != nil {
		return CameraDigest{}, err
	}

	var tb strings.Builder
	for _, ev := range tr.Events() {
		fmt.Fprintf(&tb, "%d %v %s %d\n", int64(ev.At), ev.Kind, ev.Task, ev.CPU)
	}

	var mb strings.Builder
	for _, t := range k.Tasks() {
		st := t.Stats()
		fmt.Fprintf(&mb, "task %s state=%v jobs=%d misses=%d skips=%d lat=%v resp=%v\n",
			st.Name, st.State, st.Jobs, st.Misses, st.Skips, st.Latency, st.Response)
	}
	for _, info := range d.Components() {
		fmt.Fprintf(&mb, "comp %s state=%v bindings=%v usage=%.4f\n",
			info.Name, info.State, info.Bindings, info.CPUUsage)
	}
	for _, ev := range d.Events() {
		fmt.Fprintf(&mb, "event %d %s %v->%v %s\n",
			int64(ev.At), ev.Component, ev.From, ev.To, ev.Reason)
	}
	view := d.GlobalView()
	fmt.Fprintf(&mb, "view cpus=%d admitted=%d\n", view.NumCPUs, len(view.Admitted))
	for _, c := range view.Admitted {
		fmt.Fprintf(&mb, "contract %s cpu=%d prio=%d usage=%.4f period=%v\n",
			c.Name, c.CPU, c.Priority, c.CPUUsage, c.Period)
	}

	th := sha256.Sum256([]byte(tb.String()))
	mh := sha256.Sum256([]byte(mb.String()))
	return CameraDigest{
		Trace:   hex.EncodeToString(th[:]),
		Metrics: hex.EncodeToString(mh[:]),
		Events:  k.Clock().Fired(),
	}, nil
}
