package workload

import (
	"testing"
	"time"

	"repro/internal/contract"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/sim"
)

// faultCampaignGolden pins the guard's enforcement-trace digest for the
// standard campaign at seed 1 with default guard options. The digest
// covers every violation, revocation, and restore with timestamps and
// measured utilizations: any change to scheduling, accounting, fault
// timing, or guard policy shows up here. Refresh deliberately, never
// casually.
const faultCampaignGolden = "0e61e15dfed28b9fdd9d20bcb1a2d6556f22965cf714b628ab762927e8e36f96"

// faultCampaignSpanGolden pins the observability plane's full span-trace
// digest (span IDs and cause edges included) for the same run at the
// default sampling level. It freezes not just what happened but the
// causal attribution: which fault caused which violation, which
// violation drove which revoke, which revoke cascaded which dependant.
// Refresh deliberately, never casually.
const (
	faultCampaignSpanGolden = "c6e61ab5311e85f9d706d0007fe4f30c8ea28e214de3a84002374642ad36c055"
	faultCampaignSpanCount  = 40
)

func TestFaultCampaignRepeatable(t *testing.T) {
	first, err := RunFaultCampaign(FaultCampaignConfig{Guarded: true})
	if err != nil {
		t.Fatal(err)
	}
	second, err := RunFaultCampaign(FaultCampaignConfig{Guarded: true})
	if err != nil {
		t.Fatal(err)
	}
	if first.TraceDigest != second.TraceDigest {
		t.Errorf("trace digest differs across identical runs: %s vs %s", first.TraceDigest, second.TraceDigest)
	}
	if len(first.Violations) != len(second.Violations) {
		t.Errorf("violation count differs: %d vs %d", len(first.Violations), len(second.Violations))
	}
	if len(first.Events) != len(second.Events) {
		t.Errorf("event count differs: %d vs %d", len(first.Events), len(second.Events))
	}
}

func TestFaultCampaignGoldenDigest(t *testing.T) {
	res, err := RunFaultCampaign(FaultCampaignConfig{Guarded: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.TraceDigest != faultCampaignGolden {
		t.Errorf("fault-campaign trace digest = %s, want %s\ntrace:\n%v",
			res.TraceDigest, faultCampaignGolden, res.GuardTrace)
	}
	if res.SpanDigest != faultCampaignSpanGolden || res.SpanCount != faultCampaignSpanCount {
		t.Errorf("fault-campaign span digest = %s (%d spans), want %s (%d spans)",
			res.SpanDigest, res.SpanCount, faultCampaignSpanGolden, faultCampaignSpanCount)
	}
	second, err := RunFaultCampaign(FaultCampaignConfig{Guarded: true})
	if err != nil {
		t.Fatal(err)
	}
	if second.SpanDigest != res.SpanDigest {
		t.Errorf("span digest differs across identical runs: %s vs %s",
			res.SpanDigest, second.SpanDigest)
	}
}

// The span stream must carry the full causal story of the campaign: the
// violation names the fault injection as its cause, the revoke descends
// from the violation, and the snapshot counters agree with the guard's
// own records.
func TestFaultCampaignSpanCausality(t *testing.T) {
	res, err := RunFaultCampaign(FaultCampaignConfig{Guarded: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Obs.Contract.Violations != uint64(len(res.Violations)) {
		t.Errorf("obs counted %d violations, guard recorded %d",
			res.Obs.Contract.Violations, len(res.Violations))
	}
	if res.Obs.Contract.Revocations != uint64(res.RevokeCount) ||
		res.Obs.Contract.Restores != uint64(res.RestoreCount) {
		t.Errorf("obs contract stats %+v disagree with revokes=%d restores=%d",
			res.Obs.Contract, res.RevokeCount, res.RestoreCount)
	}
	if res.Obs.Fault.Injections == 0 || res.Obs.Fault.Clears == 0 || res.Obs.Fault.Reapplies == 0 {
		t.Errorf("fault stats incomplete: %+v (standard campaign re-applies on re-admission)", res.Obs.Fault)
	}
}

func TestFaultCampaignContainmentAndRecovery(t *testing.T) {
	res, err := RunFaultCampaign(FaultCampaignConfig{Guarded: true})
	if err != nil {
		t.Fatal(err)
	}

	// The inflated execution time must surface as a budget-overrun
	// violation against calc.
	if len(res.Violations) == 0 {
		t.Fatal("no violations detected")
	}
	v := res.Violations[0]
	if v.Component != "calc" || v.Kind != contract.BudgetOverrun {
		t.Errorf("first violation = %v, want calc budget-overrun", v)
	}
	if res.DetectionLatency <= 0 || res.DetectionLatency > 50*time.Millisecond {
		t.Errorf("detection latency = %v, want within a few guard windows", res.DetectionLatency)
	}

	// Enforcement: at least one revoke, and the dependant cascades.
	if res.RevokeCount == 0 || res.RestoreCount == 0 {
		t.Fatalf("revokes=%d restores=%d, want both > 0", res.RevokeCount, res.RestoreCount)
	}
	cascade := false
	for _, ev := range res.Events {
		if ev.Component == "disp" && ev.To == core.Unsatisfied && ev.At >= v.At {
			cascade = true
		}
	}
	if !cascade {
		t.Error("disp never cascaded to UNSATISFIED after calc's violation")
	}

	// Recovery: after the fault clears, both components end ACTIVE, with
	// the provider activating no later than its dependant.
	for _, info := range res.Final {
		if info.State != core.Active {
			t.Errorf("final state of %s = %v, want ACTIVE", info.Name, info.State)
		}
		if info.Revoked {
			t.Errorf("%s still revoked at end of run", info.Name)
		}
	}
	faultClear := sim.Time(FaultStart + FaultDuration)
	if res.RecoveredAt <= faultClear {
		t.Errorf("recovered at %v, want after fault clear %v", res.RecoveredAt, faultClear)
	}
	if res.MTTR <= 0 || res.MTTR > 400*time.Millisecond {
		t.Errorf("MTTR = %v, want positive and bounded", res.MTTR)
	}
	// Dependency order: every disp activation is preceded (in event
	// order) by its provider's activation at the same instant.
	calcActiveAt := map[sim.Time]bool{}
	for _, ev := range res.Events {
		if ev.Component == "calc" && ev.To == core.Active {
			calcActiveAt[ev.At] = true
		}
		if ev.Component == "disp" && ev.To == core.Active && !calcActiveAt[ev.At] {
			t.Errorf("disp activated at %v before calc", ev.At)
		}
	}

	// Containment: disp's dispatch latency stays at its fault-free level
	// (worst case ≈31 µs of release-instant contention with calc's 30 µs
	// job) instead of the ≈120 µs the uncontained inflated job causes.
	if res.DispMaxAbs >= 35000 {
		t.Errorf("guarded disp max |latency| = %d ns, want < 35000", res.DispMaxAbs)
	}
}

func TestFaultCampaignUnguardedBreaksBound(t *testing.T) {
	un, err := RunFaultCampaign(FaultCampaignConfig{Guarded: false})
	if err != nil {
		t.Fatal(err)
	}
	if len(un.Violations) != 0 || un.RevokeCount != 0 {
		t.Errorf("unguarded run recorded enforcement: %d violations, %d revokes", len(un.Violations), un.RevokeCount)
	}
	// Without the guard the inflated calc job blocks disp's dispatch for
	// ~4× the 30 µs bound.
	if un.DispMaxAbs <= 100000 {
		t.Errorf("unguarded disp max |latency| = %d ns, want > 100000 (uncontained fault)", un.DispMaxAbs)
	}
	g, err := RunFaultCampaign(FaultCampaignConfig{Guarded: true})
	if err != nil {
		t.Fatal(err)
	}
	if g.DispMaxAbs*2 >= un.DispMaxAbs {
		t.Errorf("guard did not contain the fault: guarded %d ns vs unguarded %d ns", g.DispMaxAbs, un.DispMaxAbs)
	}
}

func TestFaultCampaignOtherKinds(t *testing.T) {
	stall := fault.Campaign{Name: "calc-stall", Faults: []fault.Fault{{
		Kind: fault.Stall, Target: "calc", At: 300 * time.Millisecond, For: 200 * time.Millisecond,
	}}}
	res, err := RunFaultCampaign(FaultCampaignConfig{Guarded: true, Campaign: &stall})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, v := range res.Violations {
		if v.Component == "calc" && v.Kind == contract.DeadlineMiss {
			found = true
		}
	}
	if !found {
		t.Errorf("stall campaign produced no deadline-miss violation: %v", res.Violations)
	}

	freeze := fault.Campaign{Name: "lat-freeze", Faults: []fault.Fault{{
		Kind: fault.SHMFreeze, Target: LatencySHM, At: 300 * time.Millisecond, For: 200 * time.Millisecond,
	}}}
	res, err = RunFaultCampaign(FaultCampaignConfig{Guarded: true, Campaign: &freeze})
	if err != nil {
		t.Fatal(err)
	}
	found = false
	for _, v := range res.Violations {
		if v.Component == "calc" && v.Kind == contract.PortStale {
			found = true
		}
	}
	if !found {
		t.Errorf("freeze campaign produced no port-stale violation: %v", res.Violations)
	}
	for _, info := range res.Final {
		if info.State != core.Active {
			t.Errorf("after freeze cleared, %s = %v, want ACTIVE", info.Name, info.State)
		}
	}
}
