package workload

import (
	"testing"
	"time"

	"repro/internal/rtos"
)

var exact = rtos.TimingModel{}

// TestBackgroundLoadCannotDelayRTTasks is the dual-kernel property: a
// saturating non-RT load leaves RT dispatch latency untouched, because
// every RT priority outranks the whole Linux band.
func TestBackgroundLoadCannotDelayRTTasks(t *testing.T) {
	measure := func(withLoad bool) (rtMax int64, hogJobs uint64) {
		k := rtos.NewKernel(rtos.Config{Timing: &exact, Seed: 5})
		rt, err := k.CreateTask(rtos.TaskSpec{
			Name: "rt", Type: rtos.Periodic, Period: time.Millisecond,
			Priority: 3, ExecTime: 100 * time.Microsecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		var bl *BackgroundLoad
		if withLoad {
			bl, err = NewBackgroundLoad(k, 0, 3)
			if err != nil {
				t.Fatal(err)
			}
			if err := bl.Start(); err != nil {
				t.Fatal(err)
			}
		}
		if err := rt.Start(); err != nil {
			t.Fatal(err)
		}
		if err := k.Run(2 * time.Second); err != nil {
			t.Fatal(err)
		}
		if withLoad {
			for _, h := range bl.Tasks() {
				hogJobs += h.Stats().Jobs
			}
		}
		return rt.Stats().Latency.Max, hogJobs
	}
	idleMax, _ := measure(false)
	loadedMax, hogJobs := measure(true)
	if idleMax != 0 || loadedMax != 0 {
		t.Fatalf("rt latency idle=%d loaded=%d, want 0/0 (RT immunity)", idleMax, loadedMax)
	}
	if hogJobs == 0 {
		t.Fatal("background load never ran")
	}
}

// TestBackgroundLoadSoaksIdleCPU: the hogs consume (almost) everything
// the RT set leaves over.
func TestBackgroundLoadSoaksIdleCPU(t *testing.T) {
	k := rtos.NewKernel(rtos.Config{Timing: &exact, Seed: 5})
	rt, err := k.CreateTask(rtos.TaskSpec{
		Name: "rt", Type: rtos.Periodic, Period: time.Millisecond,
		Priority: 1, ExecTime: 300 * time.Microsecond, // 30% RT demand
	})
	if err != nil {
		t.Fatal(err)
	}
	bl, err := NewBackgroundLoad(k, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Start(); err != nil {
		t.Fatal(err)
	}
	if err := bl.Start(); err != nil {
		t.Fatal(err)
	}
	const window = 2 * time.Second
	if err := k.Run(window); err != nil {
		t.Fatal(err)
	}
	busy, err := k.BusyTime(0)
	if err != nil {
		t.Fatal(err)
	}
	if frac := float64(busy) / float64(window); frac < 0.95 {
		t.Fatalf("cpu busy fraction = %v, want ~1 under stress load", frac)
	}
	// The hogs got roughly the leftover 70%.
	var hogBusy time.Duration
	for _, h := range bl.Tasks() {
		st := h.Stats()
		hogBusy += time.Duration(st.Jobs) * h.Spec().ExecTime
	}
	if frac := float64(hogBusy) / float64(window); frac < 0.6 || frac > 0.75 {
		t.Fatalf("hog share = %v, want ~0.7", frac)
	}
	bl.Stop()
	if len(k.Tasks()) != 1 {
		t.Fatalf("hogs not deleted: %v", k.Tasks())
	}
}

func TestBackgroundLoadValidation(t *testing.T) {
	k := rtos.NewKernel(rtos.Config{Seed: 1})
	if _, err := NewBackgroundLoad(k, 0, 0); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := NewBackgroundLoad(k, 5, 1); err == nil {
		t.Fatal("bad cpu accepted")
	}
	// Name collision rolls back cleanly.
	if _, err := k.CreateTask(rtos.TaskSpec{Name: "hog1", Type: rtos.Aperiodic, ExecTime: time.Microsecond}); err != nil {
		t.Fatal(err)
	}
	if _, err := NewBackgroundLoad(k, 0, 3); err == nil {
		t.Fatal("collision not reported")
	}
	if _, ok := k.Task("hog0"); ok {
		t.Fatal("partial load not rolled back")
	}
}
