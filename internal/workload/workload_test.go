package workload

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/rtos"
)

func TestLatencyConfigLabel(t *testing.T) {
	cases := []struct {
		cfg  LatencyConfig
		want string
	}{
		{LatencyConfig{Hybrid: true, Mode: rtos.LightLoad}, "HRC (light)"},
		{LatencyConfig{Hybrid: false, Mode: rtos.LightLoad}, "Pure RTAI (light)"},
		{LatencyConfig{Hybrid: true, Mode: rtos.StressLoad}, "HRC (stress)"},
		{LatencyConfig{Hybrid: false, Mode: rtos.StressLoad}, "Pure RTAI (stress)"},
	}
	for _, c := range cases {
		if got := c.cfg.Label(); got != c.want {
			t.Errorf("Label = %q, want %q", got, c.want)
		}
	}
}

func TestRunLatencyPureLight(t *testing.T) {
	res, err := RunLatency(LatencyConfig{Samples: 5000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Row.N < 5000 || res.Row.N > 5010 {
		t.Fatalf("samples = %d, want ~5000", res.Row.N)
	}
	// Light regime: mean near zero, bounded by ±5µs.
	if math.Abs(res.Row.Average) > 5000 {
		t.Fatalf("light mean = %v ns", res.Row.Average)
	}
	if res.Misses != 0 || res.Skips != 0 {
		t.Fatalf("misses/skips = %d/%d", res.Misses, res.Skips)
	}
	if res.Display.N == 0 {
		t.Fatal("display collected no samples")
	}
}

func TestRunLatencyHybridStress(t *testing.T) {
	res, err := RunLatency(LatencyConfig{Hybrid: true, Mode: rtos.StressLoad, Samples: 5000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Stress regime: strongly negative mean, tight spread.
	if res.Row.Average > -15000 || res.Row.Average < -28000 {
		t.Fatalf("stress mean = %v ns", res.Row.Average)
	}
	if res.Row.AveDev > 3000 {
		t.Fatalf("stress avedev = %v ns", res.Row.AveDev)
	}
}

func TestTable1Shape(t *testing.T) {
	rows, err := Table1(8000, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	hrcLight, pureLight, hrcStress, pureStress := rows[0], rows[1], rows[2], rows[3]

	// Paper's comparative claims:
	// (1) HRC ≈ pure RTAI in both modes (means differ by less than one
	//     light-mode AVEDEV).
	if d := math.Abs(hrcLight.Average - pureLight.Average); d > pureLight.AveDev {
		t.Errorf("light HRC vs pure differ by %v ns (avedev %v)", d, pureLight.AveDev)
	}
	if d := math.Abs(hrcStress.Average - pureStress.Average); d > 10*pureStress.AveDev {
		t.Errorf("stress HRC vs pure differ by %v ns", d)
	}
	// (2) Light: near-zero mean, wide spread. Stress: ≈ -21 µs, tight.
	if math.Abs(pureLight.Average) > 5000 {
		t.Errorf("pure light mean = %v", pureLight.Average)
	}
	if pureStress.Average > -15000 {
		t.Errorf("pure stress mean = %v", pureStress.Average)
	}
	if pureLight.AveDev < 4*pureStress.AveDev {
		t.Errorf("spread regimes: light %v vs stress %v", pureLight.AveDev, pureStress.AveDev)
	}
	// (3) The 30 µs latency guarantee the paper highlights.
	for _, r := range rows {
		if r.Min < -35000 || r.Max > 35000 {
			t.Errorf("%s outside ±35µs envelope: min %d max %d", r.Label, r.Min, r.Max)
		}
	}
}

func TestDeterministicRows(t *testing.T) {
	a, err := RunLatency(LatencyConfig{Samples: 2000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunLatency(LatencyConfig{Samples: 2000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if a.Row.Average != b.Row.Average || a.Row.Min != b.Row.Min || a.Row.Max != b.Row.Max {
		t.Fatalf("same seed produced different rows: %+v vs %+v", a.Row, b.Row)
	}
}

func TestDynamicityScenario(t *testing.T) {
	res, err := RunDynamicityScenario(7)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Steps) != 5 {
		t.Fatalf("steps = %d", len(res.Steps))
	}
	if res.Steps[0].DispState != "UNSATISFIED" {
		t.Fatalf("step1 disp = %s", res.Steps[0].DispState)
	}
	if res.Steps[1].CalcState != "ACTIVE" || res.Steps[1].DispState != "ACTIVE" {
		t.Fatalf("step2 = %+v", res.Steps[1])
	}
	if res.Steps[3].DispState != "UNSATISFIED" {
		t.Fatalf("step4 disp = %s", res.Steps[3].DispState)
	}
	if res.Steps[4].DispState != "ACTIVE" {
		t.Fatalf("step5 disp = %s", res.Steps[4].DispState)
	}
	if len(res.Events) == 0 {
		t.Fatal("no lifecycle events recorded")
	}
	for _, ev := range res.Events {
		if ev.From != 0 && !core.CanTransition(ev.From, ev.To) {
			t.Fatalf("illegal transition in scenario: %v", ev)
		}
	}
}

func TestOversubscribedSet(t *testing.T) {
	comps, err := OversubscribedSet(10, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(comps) != 10 {
		t.Fatalf("n = %d", len(comps))
	}
	var total float64
	for _, c := range comps {
		total += c.CPUUsage
	}
	if math.Abs(total-1.5) > 0.01 {
		t.Fatalf("total usage = %v", total)
	}
	if _, err := OversubscribedSet(0, 1); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := OversubscribedSet(101, 1); err == nil {
		t.Fatal("n=101 accepted")
	}
}
