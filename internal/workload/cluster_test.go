package workload

import (
	"testing"
	"time"
)

// The acceptance campaign: a seeded 8-node churn storm with one
// partition/heal cycle must produce byte-identical digests across two
// runs and across per-node kernel shard counts, and the global view
// must converge after the heal.
func TestClusterCampaignDeterministic(t *testing.T) {
	spec := ClusterSpec{Nodes: 8, Seed: 42, NumCPUs: 4, RunFor: 120 * time.Millisecond}
	ref, err := RunClusterCampaign(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !ref.Converged {
		t.Fatal("global view did not converge after the heal")
	}
	if ref.NodeLosses == 0 {
		t.Fatal("partition never triggered a node-loss decision")
	}
	if ref.Dropped == 0 {
		t.Fatal("campaign network too clean to prove anything")
	}
	again, err := RunClusterCampaign(spec)
	if err != nil {
		t.Fatal(err)
	}
	if again.Digest != ref.Digest {
		t.Fatalf("same spec, different digests:\n%s\n%s", ref.Digest, again.Digest)
	}
	for _, shards := range []int{2, 4} {
		s := spec
		s.Shards = shards
		got, err := RunClusterCampaign(s)
		if err != nil {
			t.Fatal(err)
		}
		if got.Digest != ref.Digest {
			t.Fatalf("Shards=%d changed the campaign digest:\n%s\n%s", shards, ref.Digest, got.Digest)
		}
	}
}

func TestClusterCampaignParallelMatchesSequential(t *testing.T) {
	spec := ClusterSpec{Nodes: 4, Seed: 9, RunFor: 80 * time.Millisecond}
	ref, err := RunClusterCampaign(spec)
	if err != nil {
		t.Fatal(err)
	}
	spec.Parallel = true
	got, err := RunClusterCampaign(spec)
	if err != nil {
		t.Fatal(err)
	}
	if got.Digest != ref.Digest {
		t.Fatalf("Parallel changed the campaign digest:\n%s\n%s", ref.Digest, got.Digest)
	}
}
