package workload

// Whole-bundle deploy workloads: the same synthetic composition DAG is
// deployed four ways — one event-path Deploy per descriptor (the legacy
// loop), one batched DeployAll with the plan fast path disabled (the
// event-path reference the plan must match byte for byte), one batched
// DeployAll that compiles and applies a fresh plan, and one that
// fast-applies a plan already sitting in a shared cache (the migration
// and redeploy case). bench.MeasurePlan turns the four walls into the
// committed BENCH_plan.json and asserts the digests agree.

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/descriptor"
	"repro/internal/osgi"
	"repro/internal/plan"
	"repro/internal/rtos"
)

// PlanDeploySpec sizes one whole-bundle deploy comparison.
type PlanDeploySpec struct {
	// Components is the approximate population size; it is rounded to
	// whole producer→relay→consumers groups (default 100).
	Components int
	// FanOut is the number of consumers per relay topic, 1..9 (default 3).
	FanOut int
	// Seed drives the simulated kernel (default 1).
	Seed int64
	// NumCPUs for the simulated kernel (default 4).
	NumCPUs int
	// Reps repeats the whole comparison and keeps the minimum wall per
	// strategy (default 1). The minimum is the standard noise-robust
	// wall-clock estimator on a contended host: scheduler preemption and
	// GC only ever add time. Parity checks must hold on every rep.
	Reps int
}

func (s *PlanDeploySpec) applyDefaults() {
	if s.Components <= 0 {
		s.Components = 100
	}
	if s.FanOut <= 0 {
		s.FanOut = 3
	}
	if s.FanOut > 9 {
		s.FanOut = 9
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.NumCPUs <= 0 {
		s.NumCPUs = 4
	}
	if s.Reps <= 0 {
		s.Reps = 1
	}
}

// PlanDeployStats reports the four deploy walls plus the parity checks
// that make them comparable.
type PlanDeployStats struct {
	// Components actually built (groups × (FanOut+2)).
	Components int
	// PerDescriptorWall times N event-path Deploy calls in topology
	// order — the legacy whole-bundle treatment.
	PerDescriptorWall time.Duration
	// EventBatchWall times one DeployAll with the fast path disabled:
	// install-all plus a single worklist drain.
	EventBatchWall time.Duration
	// PlanColdWall times one DeployAll that compiles the plan first.
	PlanColdWall time.Duration
	// PlanWarmWall times one DeployAll against a pre-warmed cache — the
	// pure apply path a migration target or redeploy sees.
	PlanWarmWall time.Duration
	// DigestMatch confirms the plan applies (cold and warm) reproduced
	// the event-batch run bit for bit: event trace, observability
	// stream with span IDs and causes, and final states all equal.
	DigestMatch bool
	// StateMatch confirms the per-descriptor loop converged to the same
	// final states (its event interleaving legitimately differs).
	StateMatch bool
	// PlanApplied confirms the fast path actually ran on both plan runs
	// (a silent fallback would time the event path twice).
	PlanApplied bool
	// CacheHit confirms the warm run found the shared cache entry
	// instead of recompiling.
	CacheHit bool
}

// buildPlanPopulation renders a feasible composition DAG: producer →
// relay → FanOut consumers per group, every group admitted at full
// contract, so the whole batch plan-applies. Unlike the churn
// population there is no over-budget heavy tail — an admission-denied
// batch deliberately falls back to the event path.
func buildPlanPopulation(spec PlanDeploySpec) ([]*descriptor.Component, error) {
	groups := spec.Components / (spec.FanOut + 2)
	if groups < 1 {
		groups = 1
	}
	if groups > 999 {
		groups = 999
	}
	var descs []*descriptor.Component
	add := func(name, src string) error {
		c, err := descriptor.Parse(src)
		if err != nil {
			return fmt.Errorf("workload: plan descriptor %s: %w", name, err)
		}
		descs = append(descs, c)
		return nil
	}
	for g := 0; g < groups; g++ {
		cpu := g % spec.NumCPUs
		tg := fmt.Sprintf("t%03d", g)
		ug := fmt.Sprintf("u%03d", g)
		pn := fmt.Sprintf("p%03d", g)
		rn := fmt.Sprintf("r%03d", g)
		if err := add(pn, churnDescriptorXML(pn, cpu, 0.0005, nil, []string{tg})); err != nil {
			return nil, err
		}
		if err := add(rn, churnDescriptorXML(rn, cpu, 0.0005, []string{tg}, []string{ug})); err != nil {
			return nil, err
		}
		for f := 0; f < spec.FanOut; f++ {
			cn := fmt.Sprintf("c%03dx%d", g, f)
			if err := add(cn, churnDescriptorXML(cn, cpu, 0.0005, []string{ug}, nil)); err != nil {
				return nil, err
			}
		}
	}
	return descs, nil
}

// planDeployRun is one timed deploy of the population on a fresh system.
type planDeployRun struct {
	wall        time.Duration
	traceDigest string
	obsDigest   string
	stateDigest string
	applies     uint64
	cacheHits   uint64
}

func runPlanDeployOnce(spec PlanDeploySpec, descs []*descriptor.Component,
	disableFast, perDescriptor bool, cache *plan.Cache) (planDeployRun, error) {
	fw := osgi.NewFramework()
	timing := rtos.TimingModel{}
	k := rtos.NewKernel(rtos.Config{NumCPUs: spec.NumCPUs, Timing: &timing, Seed: uint64(spec.Seed)})
	d, err := core.New(fw, k, core.Options{DisablePlanFastPath: disableFast})
	if err != nil {
		return planDeployRun{}, err
	}
	defer d.Close()
	if cache != nil {
		d.SetPlanCache(cache)
	}

	start := time.Now()
	if perDescriptor {
		// Deploy in lexicographic name order — the order bundle adoption
		// reads resources, which fronts the consumers (c…) before the
		// producers (p…) and relays (r…), so the waiting set builds up
		// and every late provider triggers cascade rounds. This is what
		// the legacy one-deploy-per-descriptor treatment actually paid.
		ordered := append([]*descriptor.Component(nil), descs...)
		sort.Slice(ordered, func(i, j int) bool { return ordered[i].Name < ordered[j].Name })
		for _, c := range ordered {
			if err := d.Deploy(c); err != nil {
				return planDeployRun{}, fmt.Errorf("workload: plan deploy %s: %w", c.Name, err)
			}
		}
	} else {
		d.DeployAll(descs)
	}
	wall := time.Since(start)

	th := sha256.New()
	for _, ev := range d.Events() {
		fmt.Fprintf(th, "%d|%s|%v|%v|%s\n", int64(ev.At), ev.Component, ev.From, ev.To, ev.Reason)
	}
	sh := sha256.New()
	for _, info := range d.Components() {
		fmt.Fprintf(sh, "%s|%v|%v|%s|", info.Name, info.State, info.Revoked, info.LastReason)
		keys := make([]string, 0, len(info.Bindings))
		for k := range info.Bindings {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(sh, "%s->%s,", k, info.Bindings[k])
		}
		sh.Write([]byte("\n"))
	}
	snap := d.Obs().Snapshot()
	return planDeployRun{
		wall:        wall,
		traceDigest: hex.EncodeToString(th.Sum(nil)),
		obsDigest:   d.Obs().Digest(),
		stateDigest: hex.EncodeToString(sh.Sum(nil)),
		applies:     snap.Plan.Applies,
		cacheHits:   snap.Plan.CacheHits,
	}, nil
}

// RunPlanDeploy deploys the same population four ways and compares.
// With Reps > 1 the comparison repeats and each wall keeps its minimum,
// while the parity checks must pass on every rep.
func RunPlanDeploy(spec PlanDeploySpec) (PlanDeployStats, error) {
	spec.applyDefaults()
	descs, err := buildPlanPopulation(spec)
	if err != nil {
		return PlanDeployStats{}, err
	}
	var out PlanDeployStats
	for rep := 0; rep < spec.Reps; rep++ {
		st, err := runPlanDeployRep(spec, descs)
		if err != nil {
			return PlanDeployStats{}, err
		}
		if rep == 0 {
			out = st
			continue
		}
		out.PerDescriptorWall = minDuration(out.PerDescriptorWall, st.PerDescriptorWall)
		out.EventBatchWall = minDuration(out.EventBatchWall, st.EventBatchWall)
		out.PlanColdWall = minDuration(out.PlanColdWall, st.PlanColdWall)
		out.PlanWarmWall = minDuration(out.PlanWarmWall, st.PlanWarmWall)
		out.DigestMatch = out.DigestMatch && st.DigestMatch
		out.StateMatch = out.StateMatch && st.StateMatch
		out.PlanApplied = out.PlanApplied && st.PlanApplied
		out.CacheHit = out.CacheHit && st.CacheHit
	}
	return out, nil
}

func minDuration(a, b time.Duration) time.Duration {
	if b < a {
		return b
	}
	return a
}

// runPlanDeployRep is one full four-way comparison on fresh systems.
func runPlanDeployRep(spec PlanDeploySpec, descs []*descriptor.Component) (PlanDeployStats, error) {
	perDesc, err := runPlanDeployOnce(spec, descs, true, true, nil)
	if err != nil {
		return PlanDeployStats{}, err
	}
	batch, err := runPlanDeployOnce(spec, descs, true, false, nil)
	if err != nil {
		return PlanDeployStats{}, err
	}
	cold, err := runPlanDeployOnce(spec, descs, false, false, nil)
	if err != nil {
		return PlanDeployStats{}, err
	}
	// The warm run shares a cache another system already compiled into —
	// what a redeploy on the same node or a cluster migration target sees.
	shared := plan.NewCache()
	warmer, err := runPlanDeployOnce(spec, descs, false, false, shared)
	if err != nil {
		return PlanDeployStats{}, err
	}
	warm, err := runPlanDeployOnce(spec, descs, false, false, shared)
	if err != nil {
		return PlanDeployStats{}, err
	}
	if warmer.applies == 0 {
		return PlanDeployStats{}, fmt.Errorf("workload: cache-warming run fell back to the event path")
	}

	return PlanDeployStats{
		Components:        len(descs),
		PerDescriptorWall: perDesc.wall,
		EventBatchWall:    batch.wall,
		PlanColdWall:      cold.wall,
		PlanWarmWall:      warm.wall,
		DigestMatch: batch.traceDigest == cold.traceDigest &&
			batch.obsDigest == cold.obsDigest &&
			batch.stateDigest == cold.stateDigest &&
			batch.traceDigest == warm.traceDigest &&
			batch.obsDigest == warm.obsDigest &&
			batch.stateDigest == warm.stateDigest,
		StateMatch:  perDesc.stateDigest == batch.stateDigest,
		PlanApplied: cold.applies > 0 && warm.applies > 0,
		CacheHit:    warm.cacheHits > 0,
	}, nil
}
