package workload

import (
	"testing"
)

// The ISSUE-10 acceptance gate, workload half: the predictive guard must
// beat the reactive one on the same drift (strictly fewer hard misses at
// equal-or-better availability), the campaign must be byte-deterministic
// across reruns and shard counts, and the estimator must converge —
// forecasting the violation strictly before the first hard miss across a
// seed sweep while never firing on stationary seeds.

// TestPredictAblation pins the headline claim: on the same seed and the
// same drift, forecasting strictly reduces hard deadline misses without
// giving up availability.
func TestPredictAblation(t *testing.T) {
	reactive, err := RunPredictCampaign(PredictConfig{Predictive: false})
	if err != nil {
		t.Fatal(err)
	}
	predictive, err := RunPredictCampaign(PredictConfig{Predictive: true})
	if err != nil {
		t.Fatal(err)
	}
	if reactive.HardMisses == 0 {
		t.Fatal("reactive baseline recorded no hard misses; the drift is not biting")
	}
	if predictive.HardMisses >= reactive.HardMisses {
		t.Errorf("predictive misses = %d, want strictly fewer than reactive %d",
			predictive.HardMisses, reactive.HardMisses)
	}
	if predictive.Availability < reactive.Availability {
		t.Errorf("predictive availability %.4f < reactive %.4f",
			predictive.Availability, reactive.Availability)
	}
	if predictive.ForecastAt == 0 {
		t.Error("predictive run never forecast")
	}
	if predictive.PredictDowngrades == 0 {
		t.Error("predictive run never stepped down on a forecast")
	}
	if reactive.ForecastAt != 0 || reactive.PredictDowngrades != 0 {
		t.Errorf("reactive baseline forecast (at=%v, downs=%d); the ablation arms are crossed",
			reactive.ForecastAt, reactive.PredictDowngrades)
	}
}

// TestPredictDeterminism reruns the identical config: every digest and
// counter must be byte-identical.
func TestPredictDeterminism(t *testing.T) {
	cfg := PredictConfig{Predictive: true}
	a, err := RunPredictCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunPredictCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.TraceDigest != b.TraceDigest {
		t.Errorf("guard trace digest differs across reruns: %s vs %s", a.TraceDigest, b.TraceDigest)
	}
	if a.SpanDigest != b.SpanDigest {
		t.Errorf("span digest differs across reruns: %s vs %s", a.SpanDigest, b.SpanDigest)
	}
	if a.HardMisses != b.HardMisses || a.FirstMissAt != b.FirstMissAt || a.ForecastAt != b.ForecastAt {
		t.Errorf("counters differ across reruns: %+v vs %+v", a, b)
	}
}

// TestPredictShardInvariance runs both ablation arms sequentially and at
// shard counts 1 and 4: the guard trace digest and the ID-free span
// stream digest must not depend on the shard count.
func TestPredictShardInvariance(t *testing.T) {
	for _, predictive := range []bool{false, true} {
		base := PredictConfig{Predictive: predictive}
		ref, err := RunPredictCampaign(base)
		if err != nil {
			t.Fatal(err)
		}
		for _, shards := range []int{1, 4} {
			cfg := base
			cfg.Shards = shards
			got, err := RunPredictCampaign(cfg)
			if err != nil {
				t.Fatalf("pred=%v shards=%d: %v", predictive, shards, err)
			}
			if got.TraceDigest != ref.TraceDigest {
				t.Errorf("pred=%v shards=%d: guard trace digest %s != sequential %s",
					predictive, shards, got.TraceDigest, ref.TraceDigest)
			}
			if got.StreamDigest != ref.StreamDigest {
				t.Errorf("pred=%v shards=%d: stream digest %s != sequential %s",
					predictive, shards, got.StreamDigest, ref.StreamDigest)
			}
			if got.HardMisses != ref.HardMisses {
				t.Errorf("pred=%v shards=%d: misses %d != sequential %d",
					predictive, shards, got.HardMisses, ref.HardMisses)
			}
		}
	}
}

// TestPredictConvergenceAcrossSeeds sweeps 20 seeds: in at least 95% of
// them the forecast must fire strictly before the run's first hard miss
// (or prevent misses outright). One straggler is tolerated — the jitter
// draw can put the miss onset inside the estimator's minimum window.
func TestPredictConvergenceAcrossSeeds(t *testing.T) {
	const seeds = 20
	converged := 0
	for seed := uint64(1); seed <= seeds; seed++ {
		res, err := RunPredictCampaign(PredictConfig{Predictive: true, Seed: seed})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		ok := res.ForecastAt > 0 && (res.FirstMissAt == 0 || res.ForecastAt < res.FirstMissAt)
		if ok {
			converged++
		} else {
			t.Logf("seed %d did not converge: forecastAt=%v firstMiss=%v misses=%d",
				seed, res.ForecastAt, res.FirstMissAt, res.HardMisses)
		}
	}
	if converged < seeds*95/100 {
		t.Errorf("forecast preceded the first hard miss in only %d/%d seeds, want >= 95%%", converged, seeds)
	}
}
