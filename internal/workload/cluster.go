package workload

// Cluster churn-under-partition campaign: N federated DRCR nodes run a
// producer/consumer mesh while components are deployed, removed and
// revoked on a seeded schedule and one partition/heal cycle cuts the
// cluster in half. The campaign digest folds every node's lifecycle
// log, the per-node observability streams, the cluster control plane
// and the network conservation ledger; two runs with the same spec must
// agree byte for byte for any per-node kernel shard count, which is how
// the federation layer's determinism is pinned in CI.

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/descriptor"
	"repro/internal/net"
	"repro/internal/obs"
	"repro/internal/rtos"
	"repro/internal/sim"
)

// ClusterSpec sizes one federated churn campaign.
type ClusterSpec struct {
	// Nodes is the cluster size (default 8).
	Nodes int
	// Groups is the number of producer→consumer pairs spread across the
	// cluster (default Nodes, one pair per node).
	Groups int
	// Seed drives kernels, network and the op schedule (default 1).
	Seed uint64
	// RunFor is the simulated campaign length (default 200ms).
	RunFor time.Duration
	// Shards is the per-node kernel shard count; the digest must not
	// depend on it.
	Shards int
	// NumCPUs per node (default 2, so sharding has CPUs to split).
	NumCPUs int
	// PartitionAt/PartitionFor place one cut isolating the upper half of
	// the node ids (defaults: RunFor/4 and RunFor/4).
	PartitionAt, PartitionFor time.Duration
	// DropProb/DupProb season the links (defaults 0.02/0.01).
	DropProb, DupProb float64
	// Parallel advances node windows on real threads.
	Parallel bool
	// ObsLevel is the per-node and cluster sampling level.
	ObsLevel obs.Level
}

func (s *ClusterSpec) applyDefaults() {
	if s.Nodes <= 0 {
		s.Nodes = 8
	}
	if s.Groups <= 0 {
		s.Groups = s.Nodes
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.RunFor <= 0 {
		s.RunFor = 200 * time.Millisecond
	}
	if s.NumCPUs <= 0 {
		s.NumCPUs = 2
	}
	if s.PartitionAt <= 0 {
		s.PartitionAt = s.RunFor / 4
	}
	if s.PartitionFor <= 0 {
		s.PartitionFor = s.RunFor / 4
	}
	if s.DropProb == 0 {
		s.DropProb = 0.02
	}
	if s.DupProb == 0 {
		s.DupProb = 0.01
	}
}

// ClusterResult summarises one campaign run.
type ClusterResult struct {
	// Digest pins the whole run (see Cluster.Digest).
	Digest string
	// StitchDigest pins the cross-node causal chains the stitch tables
	// reconstruct (see Cluster.StitchDigest); like Digest it must not
	// depend on per-node shard count or Parallel.
	StitchDigest string
	// Latency is the cluster-merged latency histogram summary
	// (resolve/deploy on node planes, migrate-e2e/revoke-propagation on
	// the control plane). Wall-clock: reported, never digested.
	Latency []obs.LatencyStat
	// Converged reports post-heal global-view convergence.
	Converged bool
	// Migrations/Placements/NodeLosses count cluster-plane decisions.
	Migrations, Placements, NodeLosses uint64
	// Sent/Delivered/Dropped are the network ledger totals.
	Sent, Delivered, Dropped uint64
	// Events is the summed lifecycle event count across nodes.
	Events int
}

// clusterPairXML builds a producer/consumer pair over one short topic.
func clusterPairXML(i int) (topic, prod, cons string) {
	topic = fmt.Sprintf("t%d", i)
	prodName := fmt.Sprintf("pr%d", i)
	consName := fmt.Sprintf("co%d", i)
	prod = fmt.Sprintf(`<component name=%q desc="producer" type="periodic" cpuusage="0.10">
  <implementation bincode="wl.cluster.Prod"/>
  <periodictask frequence="500" runoncup="0" priority="3"/>
  <outport name=%q interface="RTAI.SHM" type="Integer" size="4"/>
</component>`, prodName, topic)
	cons = fmt.Sprintf(`<component name=%q desc="consumer" type="periodic" cpuusage="0.15">
  <implementation bincode="wl.cluster.Cons"/>
  <periodictask frequence="250" runoncup="0" priority="4"/>
  <inport name=%q interface="RTAI.SHM" type="Integer" size="4"/>
  <mode name="eco" frequence="100" cpuusage="0.05"/>
</component>`, consName, topic)
	return topic, prod, cons
}

// RunClusterCampaign executes the federated churn-under-partition
// campaign and digests everything observable about it.
func RunClusterCampaign(spec ClusterSpec) (ClusterResult, error) {
	spec.applyDefaults()
	c, err := cluster.New(cluster.Config{
		Nodes:    spec.Nodes,
		NumCPUs:  spec.NumCPUs,
		Shards:   spec.Shards,
		Seed:     spec.Seed,
		Parallel: spec.Parallel,
		ObsLevel: spec.ObsLevel,
		Net:      net.Config{DropProb: spec.DropProb, DupProb: spec.DupProb},
	})
	if err != nil {
		return ClusterResult{}, err
	}
	defer c.Close()

	if err := c.RegisterBody("wl.cluster.Prod", func(d *descriptor.Component) rtos.Body {
		topic := d.OutPorts[0].Name
		return func(j *rtos.JobContext) {
			if shm, err := j.Kernel.IPC().SHM(topic); err == nil {
				_ = shm.Set(int(j.Index%4), int64(j.Index))
			}
		}
	}); err != nil {
		return ClusterResult{}, err
	}
	if err := c.RegisterBody("wl.cluster.Cons", func(*descriptor.Component) rtos.Body {
		return func(*rtos.JobContext) {}
	}); err != nil {
		return ClusterResult{}, err
	}

	// Producers pin round-robin across the lower half, consumers across
	// the upper half, so the partition cuts live port wirings.
	type pair struct{ prodXML, consXML, prodName, consName string }
	pairs := make([]pair, spec.Groups)
	half := spec.Nodes / 2
	if half == 0 {
		half = 1
	}
	for i := range pairs {
		_, prodXML, consXML := clusterPairXML(i)
		pairs[i] = pair{
			prodXML:  prodXML,
			consXML:  consXML,
			prodName: fmt.Sprintf("pr%d", i),
			consName: fmt.Sprintf("co%d", i),
		}
		if err := c.DeployXMLOn(i%half, prodXML); err != nil {
			return ClusterResult{}, err
		}
		dst := half + i%(spec.Nodes-half)
		if err := c.DeployXMLOn(dst, consXML); err != nil {
			return ClusterResult{}, err
		}
	}

	c.Net().SchedulePartition(sim.Time(0).Add(sim.Duration(spec.PartitionAt)), spec.PartitionFor,
		lowerHalf(spec.Nodes)...)

	// Seeded churn: the op stream interleaves with the run in fixed
	// slices, removing/redeploying producers and revoking consumers.
	rng := sim.NewRand(spec.Seed ^ 0x9e3779b97f4a7c15)
	slices := 10
	slice := spec.RunFor / time.Duration(slices)
	for s := 0; s < slices; s++ {
		if err := c.Run(slice); err != nil {
			return ClusterResult{}, err
		}
		p := pairs[rng.Intn(len(pairs))]
		switch rng.Intn(3) {
		case 0:
			if _, placed := c.GlobalView().Placements[p.prodName]; placed {
				_ = c.Remove(p.prodName)
			} else {
				_ = c.DeployXMLOn(rng.Intn(half), p.prodXML)
			}
		case 1:
			_ = c.RevokeBudget(p.consName, "campaign revocation")
		case 2:
			_ = c.RestoreBudget(p.consName)
		}
	}
	// Quiet tail: let provisions, reports and reconciliation settle.
	if err := c.Run(spec.RunFor / 2); err != nil {
		return ClusterResult{}, err
	}

	res := ClusterResult{
		Digest:       c.Digest(),
		StitchDigest: c.StitchDigest(),
		Latency:      c.LatencyStats(),
		Converged:    c.Converged(),
	}
	snap := c.Plane().Snapshot()
	res.Migrations = snap.Cluster.Migrations
	res.Placements = snap.Cluster.Placements
	res.NodeLosses = snap.Cluster.NodeLosses
	st := c.Net().Stats()
	res.Sent, res.Delivered, res.Dropped = st.Sent, st.Delivered, st.Dropped
	for i := 0; i < c.Nodes(); i++ {
		res.Events += len(c.Node(i).DRCR().Events())
	}
	return res, nil
}

func lowerHalf(n int) []int {
	half := n / 2
	if half == 0 {
		half = 1
	}
	side := make([]int, half)
	for i := range side {
		side[i] = i
	}
	return side
}
