package workload

import (
	"time"

	"repro/internal/contract"
	"repro/internal/core"
	"repro/internal/descriptor"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/osgi"
	"repro/internal/rtos"
	"repro/internal/sim"
	"repro/internal/supervise"
)

// Degradation campaign: the §4.2 latency application extended with an
// auxiliary component, run under multi-mode contracts, the guard's
// step-down ladder, and the restart supervisor. The same scripted faults
// hit a binary (admit-or-deny) configuration and a graceful one
// (downgrade-before-deny); the result quantifies what the mode ladder
// buys — availability preserved under overload, capacity recovered by
// degrading instead of denying, and bounded time back to full contract.

// CalcModesXML is CalcXML plus a declared "eco" fallback: a quarter of
// the rate for 4/5 of the budget. The pinned exec time stays 30 µs —
// degrading changes the contract, not the work.
const CalcModesXML = `<component name="calc" desc="simulated computing job at 1000 Hz" type="periodic" cpuusage="0.05">
  <implementation bincode="rtai.demo.Calculation"/>
  <periodictask frequence="1000" runoncup="0" priority="1"/>
  <outport name="lat" interface="RTAI.SHM" type="Integer" size="100"/>
  <mode name="eco" frequence="250" cpuusage="0.04"/>
  <property name="drcom.exectime.us" type="Integer" value="30"/>
</component>`

// ZauxXML is an auxiliary analytics component whose full contract is
// deliberately infeasible next to calc and disp (0.97 + 0.06 > 1.0): a
// binary resolver must deny it, the mode-aware one admits it degraded.
const ZauxXML = `<component name="zaux" desc="auxiliary analytics sweep" type="periodic" cpuusage="0.97">
  <implementation bincode="rtai.demo.Aux"/>
  <periodictask frequence="100" runoncup="0" priority="3"/>
  <mode name="lite" frequence="50" cpuusage="0.10"/>
  <property name="drcom.exectime.us" type="Integer" value="100"/>
</component>`

// ZauxBinaryXML is the same component without the fallback mode.
const ZauxBinaryXML = `<component name="zaux" desc="auxiliary analytics sweep" type="periodic" cpuusage="0.97">
  <implementation bincode="rtai.demo.Aux"/>
  <periodictask frequence="100" runoncup="0" priority="3"/>
  <property name="drcom.exectime.us" type="Integer" value="100"/>
</component>`

// Degrade-campaign timeline (offsets from scenario start). The exec
// inflation reuses the standard campaign's window; the crash hits the
// auxiliary component late, once the overload story has played out.
const (
	// DegradeCrashAt is when zaux crashes.
	DegradeCrashAt = 900 * time.Millisecond
	// DegradeCrashClear is when the crash condition clears (the
	// supervised restart is the supervisor's decision, not the clear's).
	DegradeCrashClear = 10 * time.Millisecond
)

// DegradeCampaign scripts the two faults: calc's budget breach and
// zaux's crash.
func DegradeCampaign() fault.Campaign {
	return fault.Campaign{
		Name: "degrade-calc-overrun-zaux-crash",
		Faults: []fault.Fault{
			{
				Kind:   fault.ExecInflate,
				Target: "calc",
				At:     FaultStart,
				For:    FaultDuration,
				Factor: FaultFactor,
			},
			{
				Kind:   fault.Crash,
				Target: "zaux",
				At:     DegradeCrashAt,
				For:    DegradeCrashClear,
			},
		},
	}
}

// DegradeConfig parameterises one degradation-campaign run.
type DegradeConfig struct {
	// Seed drives all randomness (default 1).
	Seed uint64
	// RunFor is the total simulated duration (default 1.2 s).
	RunFor time.Duration
	// Binary strips the declared fallback modes: the ablation baseline
	// where admission is admit-or-deny and the guard can only revoke.
	Binary bool
	// SamplePeriod is the utilization sampling cadence (default 10 ms).
	SamplePeriod time.Duration
	// Guard overrides the guard options. HealthyReset defaults to
	// "effectively never" here so the doubling downgrade backoff stays
	// visible across the campaign's promote/violate cycles.
	Guard contract.Options
	// Supervise overrides the restart-supervisor options.
	Supervise supervise.Options
	// NumCPUs sizes the simulated kernel (default 1).
	NumCPUs int
	// Shards runs the kernel and the DRCR sharded; 0 or 1 selects the
	// sequential engines. The campaign digests must not depend on it.
	Shards int
	// Replicas deploys background calc/disp pairs on CPUs 1..NumCPUs-1;
	// ignored when NumCPUs == 1.
	Replicas int
	// ObsLevel is the observability sampling level (zero value: Sampled).
	ObsLevel obs.Level
	// SchedFunnel forces the funnel scheduler bridge on sharded kernels
	// (the per-shard emitters' differential reference).
	SchedFunnel bool
}

func (c *DegradeConfig) applyDefaults() {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.NumCPUs <= 0 {
		c.NumCPUs = 1
	}
	if c.NumCPUs == 1 {
		c.Replicas = 0
	}
	if c.RunFor <= 0 {
		c.RunFor = 1200 * time.Millisecond
	}
	if c.SamplePeriod <= 0 {
		c.SamplePeriod = 10 * time.Millisecond
	}
	if c.Guard.HealthyReset == 0 {
		c.Guard.HealthyReset = 1 << 20
	}
}

// DegradeResult captures one run of the degradation campaign.
type DegradeResult struct {
	Binary bool

	// Availability is the fraction of the run each component spent
	// ACTIVE (serving, possibly degraded), keyed by name.
	Availability map[string]float64
	// MeanUtil is the mean admitted budget (sum of the admitted modes'
	// cpuusage across ACTIVE components), sampled every SamplePeriod.
	MeanUtil    float64
	UtilSamples int
	// TimeToRepromo is calc's final re-promotion to the full contract
	// minus the fault clear; negative when calc never returned (or, in
	// binary mode, was never downgraded).
	TimeToRepromo time.Duration

	// Ladder and supervisor activity.
	Denies      int
	Revokes     int
	Downgrades  uint64
	Upgrades    uint64
	Restarts    uint64
	Escalations uint64

	SpanDigest string
	// StreamDigest is the ID-free engine/shard-comparable variant.
	StreamDigest string
	SpanCount    uint64
	Spans        []obs.Span
	Obs          obs.Snapshot

	Events         []core.Event
	Final          []core.Info
	GuardTrace     []contract.Record
	SuperviseTrace []supervise.Record
}

// RunDegradeCampaign executes the degradation campaign. Same seed + same
// config ⇒ byte-identical span digest.
func RunDegradeCampaign(cfg DegradeConfig) (DegradeResult, error) {
	cfg.applyDefaults()

	fw := osgi.NewFramework()
	k := rtos.NewKernel(rtos.Config{Seed: cfg.Seed, NumCPUs: cfg.NumCPUs, Shards: cfg.Shards})
	d, err := core.New(fw, k, core.Options{
		Shards: cfg.Shards,
		Obs:    obs.NewPlane(obs.Options{Level: cfg.ObsLevel, SchedFunnel: cfg.SchedFunnel}),
	})
	if err != nil {
		return DegradeResult{}, err
	}
	defer d.Close()

	err = d.RegisterBody("rtai.demo.Calculation", func(*descriptor.Component) rtos.Body {
		return func(j *rtos.JobContext) {
			if shm, err := j.Kernel.IPC().SHM(LatencySHM); err == nil {
				_ = shm.Set(0, int64(j.Now.Sub(j.Nominal)))
			}
		}
	})
	if err != nil {
		return DegradeResult{}, err
	}
	err = d.RegisterBody("rtai.demo.Display", func(*descriptor.Component) rtos.Body {
		return func(j *rtos.JobContext) {
			if shm, err := j.Kernel.IPC().SHM(LatencySHM); err == nil {
				_, _ = shm.Get(0)
			}
		}
	})
	if err != nil {
		return DegradeResult{}, err
	}
	var auxJobs uint64
	err = d.RegisterBody("rtai.demo.Aux", func(*descriptor.Component) rtos.Body {
		return func(*rtos.JobContext) { auxJobs++ }
	})
	if err != nil {
		return DegradeResult{}, err
	}

	calcSrc, zauxSrc := CalcModesXML, ZauxXML
	if cfg.Binary {
		calcSrc, zauxSrc = CalcXML, ZauxBinaryXML
	}
	for _, src := range []string{calcSrc, DisplayXML, zauxSrc} {
		desc, err := descriptor.Parse(src)
		if err != nil {
			return DegradeResult{}, err
		}
		if err := d.Deploy(desc); err != nil {
			return DegradeResult{}, err
		}
	}
	if err := deployReplicas(d, cfg.Replicas, cfg.NumCPUs); err != nil {
		return DegradeResult{}, err
	}

	inj, err := fault.New(d, fw)
	if err != nil {
		return DegradeResult{}, err
	}
	defer inj.Close()
	if err := inj.Install(DegradeCampaign()); err != nil {
		return DegradeResult{}, err
	}

	guard, err := contract.New(d, cfg.Guard)
	if err != nil {
		return DegradeResult{}, err
	}
	if err := guard.Start(); err != nil {
		return DegradeResult{}, err
	}
	defer guard.Stop()

	sup, err := supervise.New(d, cfg.Supervise)
	if err != nil {
		return DegradeResult{}, err
	}
	sup.Start()
	defer sup.Stop()

	// Utilization sampler: the admitted budget of the ACTIVE set, every
	// SamplePeriod on the simulated clock.
	var utilSum float64
	var utilN int
	var sample func(sim.Time)
	clock := k.Clock()
	sample = func(sim.Time) {
		var u float64
		for _, info := range d.Components() {
			if info.State == core.Active {
				u += info.CPUUsage
			}
		}
		utilSum += u
		utilN++
		_, _ = clock.After(cfg.SamplePeriod, "degrade:util-sample", sample)
	}
	if _, err := clock.After(cfg.SamplePeriod, "degrade:util-sample", sample); err != nil {
		return DegradeResult{}, err
	}

	if err := k.Run(cfg.RunFor); err != nil {
		return DegradeResult{}, err
	}

	res := DegradeResult{
		Binary:         cfg.Binary,
		Events:         d.Events(),
		Final:          d.Components(),
		GuardTrace:     guard.Trace(),
		SuperviseTrace: sup.Trace(),
		SpanDigest:     d.Obs().Digest(),
		StreamDigest:   d.Obs().StreamDigest(),
		SpanCount:      d.Obs().Emitted(),
		Spans:          d.Obs().Spans(),
		Obs:            d.Obs().Snapshot(),
		UtilSamples:    utilN,
	}
	if utilN > 0 {
		res.MeanUtil = utilSum / float64(utilN)
	}
	res.Downgrades = res.Obs.Degrade.Downgrades
	res.Upgrades = res.Obs.Degrade.Upgrades
	res.Restarts = res.Obs.Supervise.Restarts
	res.Escalations = res.Obs.Supervise.Escalations
	for _, r := range res.GuardTrace {
		if r.Action == "revoke" {
			res.Revokes++
		}
	}
	res.Denies = int(res.Obs.Lifecycle.Denials)
	res.Availability = availability(res.Events, k.Now())
	res.TimeToRepromo = -1
	faultClear := sim.Time(FaultStart + FaultDuration)
	var lastUpgrade sim.Time
	for _, sp := range d.Obs().Spans() {
		if sp.Kind == obs.KindUpgrade && sp.Component == "calc" {
			lastUpgrade = sp.At
		}
	}
	if lastUpgrade > 0 {
		res.TimeToRepromo = lastUpgrade.Sub(faultClear)
	}
	return res, nil
}

// availability integrates per-component ACTIVE time over the event log.
func availability(events []core.Event, end sim.Time) map[string]float64 {
	type span struct {
		active bool
		since  sim.Time
		total  time.Duration
	}
	acc := map[string]*span{}
	get := func(name string) *span {
		s := acc[name]
		if s == nil {
			s = &span{}
			acc[name] = s
		}
		return s
	}
	for _, ev := range events {
		s := get(ev.Component)
		switch {
		case ev.To == core.Active && !s.active:
			s.active = true
			s.since = ev.At
		case ev.To != core.Active && s.active:
			s.total += ev.At.Sub(s.since)
			s.active = false
		}
	}
	out := make(map[string]float64, len(acc))
	for name, s := range acc {
		if s.active {
			s.total += end.Sub(s.since)
		}
		if end > 0 {
			out[name] = float64(s.total) / float64(end.Sub(0))
		}
	}
	return out
}
