package workload

import (
	"testing"
	"time"
)

// The ISSUE-6 acceptance gate: campaign digests — seed-tree scheduler
// digests and obs span digests alike — must be byte-identical between
// the sequential engines and the sharded ones at shard counts 1/2/4/8,
// across the churn, fault, and degradation campaigns.

func TestChurnShardInvariance(t *testing.T) {
	base := ChurnSpec{Components: 80, Steps: 160, Seed: 5, NumCPUs: 8}
	ref, err := RunChurn(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 2, 4, 8} {
		spec := base
		spec.Shards = shards
		got, err := RunChurn(spec)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if got.TraceDigest != ref.TraceDigest {
			t.Errorf("shards=%d: trace digest %s != sequential %s", shards, got.TraceDigest, ref.TraceDigest)
		}
		if got.StateDigest != ref.StateDigest {
			t.Errorf("shards=%d: state digest %s != sequential %s", shards, got.StateDigest, ref.StateDigest)
		}
		if got.ObsDigest != ref.ObsDigest {
			t.Errorf("shards=%d: obs digest %s != sequential %s", shards, got.ObsDigest, ref.ObsDigest)
		}
	}
}

func TestLatencyShardInvariance(t *testing.T) {
	base := LatencyConfig{Hybrid: true, Samples: 3000, Seed: 7, NumCPUs: 4}
	ref, err := RunLatency(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{2, 4} {
		cfg := base
		cfg.Shards = shards
		got, err := RunLatency(cfg)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if got.Row != ref.Row {
			t.Errorf("shards=%d: latency row %+v != sequential %+v", shards, got.Row, ref.Row)
		}
		if len(got.Samples) != len(ref.Samples) {
			t.Fatalf("shards=%d: %d samples, sequential had %d", shards, len(got.Samples), len(ref.Samples))
		}
		for i := range got.Samples {
			if got.Samples[i] != ref.Samples[i] {
				t.Fatalf("shards=%d: sample %d is %d, sequential %d", shards, i, got.Samples[i], ref.Samples[i])
			}
		}
	}
}

func TestFaultCampaignShardInvariance(t *testing.T) {
	base := FaultCampaignConfig{Seed: 3, RunFor: 600 * time.Millisecond, Guarded: true,
		NumCPUs: 8, Replicas: 7}
	ref, err := RunFaultCampaign(base)
	if err != nil {
		t.Fatal(err)
	}
	if ref.SpanDigest == "" || len(ref.Events) == 0 {
		t.Fatal("reference run produced no observable activity")
	}
	for _, shards := range []int{1, 2, 4, 8} {
		cfg := base
		cfg.Shards = shards
		got, err := RunFaultCampaign(cfg)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if got.SpanDigest != ref.SpanDigest {
			t.Errorf("shards=%d: span digest %s != sequential %s", shards, got.SpanDigest, ref.SpanDigest)
		}
		if got.TraceDigest != ref.TraceDigest {
			t.Errorf("shards=%d: guard trace digest %s != sequential %s", shards, got.TraceDigest, ref.TraceDigest)
		}
		if len(got.Events) != len(ref.Events) {
			t.Errorf("shards=%d: %d lifecycle events, sequential had %d", shards, len(got.Events), len(ref.Events))
		}
		if got.DispMaxAbs != ref.DispMaxAbs {
			t.Errorf("shards=%d: disp max |latency| %d != sequential %d", shards, got.DispMaxAbs, ref.DispMaxAbs)
		}
	}
}

func TestDegradeShardInvariance(t *testing.T) {
	base := DegradeConfig{Seed: 9, RunFor: 1200 * time.Millisecond, NumCPUs: 8, Replicas: 7}
	ref, err := RunDegradeCampaign(base)
	if err != nil {
		t.Fatal(err)
	}
	if ref.SpanDigest == "" || ref.Downgrades == 0 {
		t.Fatalf("reference run not exercising the mode ladder (downgrades=%d)", ref.Downgrades)
	}
	for _, shards := range []int{1, 2, 4, 8} {
		cfg := base
		cfg.Shards = shards
		got, err := RunDegradeCampaign(cfg)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if got.SpanDigest != ref.SpanDigest {
			t.Errorf("shards=%d: span digest %s != sequential %s", shards, got.SpanDigest, ref.SpanDigest)
		}
		if got.MeanUtil != ref.MeanUtil {
			t.Errorf("shards=%d: mean util %v != sequential %v", shards, got.MeanUtil, ref.MeanUtil)
		}
		if got.Downgrades != ref.Downgrades || got.Restarts != ref.Restarts {
			t.Errorf("shards=%d: downgrades/restarts %d/%d != sequential %d/%d",
				shards, got.Downgrades, got.Restarts, ref.Downgrades, ref.Restarts)
		}
	}
}
