package workload

import (
	"testing"

	"repro/internal/obs"
)

// The storm must replay bit-identically on both resolve engines: same
// event trace, same final state. This is the workload-level counterpart
// of core's differential test, exercising the bundle-delivery path too.
func TestChurnEnginesAgree(t *testing.T) {
	spec := ChurnSpec{Components: 40, Steps: 120, Seed: 7}
	spec.FullSweep = false
	inc, err := RunChurn(spec)
	if err != nil {
		t.Fatalf("worklist churn: %v", err)
	}
	spec.FullSweep = true
	ref, err := RunChurn(spec)
	if err != nil {
		t.Fatalf("full-sweep churn: %v", err)
	}
	if inc.TraceDigest != ref.TraceDigest {
		t.Errorf("trace digests diverge: worklist %s vs full-sweep %s (events %d vs %d)",
			inc.TraceDigest, ref.TraceDigest, inc.Events, ref.Events)
	}
	if inc.StateDigest != ref.StateDigest {
		t.Errorf("state digests diverge: worklist %s vs full-sweep %s",
			inc.StateDigest, ref.StateDigest)
	}
	if inc.Components != ref.Components || inc.Components == 0 {
		t.Errorf("component counts: worklist %d, full-sweep %d", inc.Components, ref.Components)
	}
	// The observability stream is part of the engine contract too: the
	// engine-comparable digest (IDs, causes, and round internals
	// excluded) must match span for span, so a full-sweep re-consult and
	// a worklist dirty-only consult look identical to observers.
	if inc.ObsDigest != ref.ObsDigest {
		t.Errorf("obs stream digests diverge: worklist %s vs full-sweep %s (spans %d vs %d)",
			inc.ObsDigest, ref.ObsDigest, inc.Spans, ref.Spans)
	}
	if inc.Spans == 0 {
		t.Error("storm emitted no spans")
	}
}

// Same spec twice must give the same digests — the bench relies on the
// storm being a pure function of the seed.
func TestChurnDeterministic(t *testing.T) {
	spec := ChurnSpec{Components: 30, Steps: 80, Seed: 3}
	a, err := RunChurn(spec)
	if err != nil {
		t.Fatalf("first run: %v", err)
	}
	b, err := RunChurn(spec)
	if err != nil {
		t.Fatalf("second run: %v", err)
	}
	if a.TraceDigest != b.TraceDigest || a.StateDigest != b.StateDigest {
		t.Errorf("non-deterministic storm: %+v vs %+v", a, b)
	}
	if a.ObsDigest != b.ObsDigest || a.Spans != b.Spans {
		t.Errorf("non-deterministic obs stream: %s/%d vs %s/%d",
			a.ObsDigest, a.Spans, b.ObsDigest, b.Spans)
	}
}

// The engine-comparable obs digest must also survive a level change: the
// Full level adds resolve-round and sched spans, but none of them enter
// the stream digest.
func TestChurnObsDigestLevelIndependent(t *testing.T) {
	spec := ChurnSpec{Components: 30, Steps: 80, Seed: 3}
	sampled, err := RunChurn(spec)
	if err != nil {
		t.Fatalf("sampled run: %v", err)
	}
	spec.ObsLevel = obs.Full
	full, err := RunChurn(spec)
	if err != nil {
		t.Fatalf("full run: %v", err)
	}
	if sampled.ObsDigest != full.ObsDigest {
		t.Errorf("stream digest changed with sampling level: %s vs %s",
			sampled.ObsDigest, full.ObsDigest)
	}
	if full.Spans <= sampled.Spans {
		t.Errorf("full level should emit extra spans: %d vs %d", full.Spans, sampled.Spans)
	}
}
