package workload

import "testing"

// The storm must replay bit-identically on both resolve engines: same
// event trace, same final state. This is the workload-level counterpart
// of core's differential test, exercising the bundle-delivery path too.
func TestChurnEnginesAgree(t *testing.T) {
	spec := ChurnSpec{Components: 40, Steps: 120, Seed: 7}
	spec.FullSweep = false
	inc, err := RunChurn(spec)
	if err != nil {
		t.Fatalf("worklist churn: %v", err)
	}
	spec.FullSweep = true
	ref, err := RunChurn(spec)
	if err != nil {
		t.Fatalf("full-sweep churn: %v", err)
	}
	if inc.TraceDigest != ref.TraceDigest {
		t.Errorf("trace digests diverge: worklist %s vs full-sweep %s (events %d vs %d)",
			inc.TraceDigest, ref.TraceDigest, inc.Events, ref.Events)
	}
	if inc.StateDigest != ref.StateDigest {
		t.Errorf("state digests diverge: worklist %s vs full-sweep %s",
			inc.StateDigest, ref.StateDigest)
	}
	if inc.Components != ref.Components || inc.Components == 0 {
		t.Errorf("component counts: worklist %d, full-sweep %d", inc.Components, ref.Components)
	}
}

// Same spec twice must give the same digests — the bench relies on the
// storm being a pure function of the seed.
func TestChurnDeterministic(t *testing.T) {
	spec := ChurnSpec{Components: 30, Steps: 80, Seed: 3}
	a, err := RunChurn(spec)
	if err != nil {
		t.Fatalf("first run: %v", err)
	}
	b, err := RunChurn(spec)
	if err != nil {
		t.Fatalf("second run: %v", err)
	}
	if a.TraceDigest != b.TraceDigest || a.StateDigest != b.StateDigest {
		t.Errorf("non-deterministic storm: %+v vs %+v", a, b)
	}
}
