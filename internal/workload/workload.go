// Package workload builds the evaluation workloads of the paper's §4: the
// two-component latency application (a 1000 Hz calculation task feeding a
// 4 Hz display task over shared memory, converted from RTAI's performance
// test suite) in both the pure-RTAI and the declarative hybrid (DRCom)
// implementations, the stress load, and the §4.3 dynamicity scenario.
package workload

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/descriptor"
	"repro/internal/metrics"
	"repro/internal/osgi"
	"repro/internal/policy"
	"repro/internal/rtos"
	"repro/internal/rtos/ipc"
)

// CalcFrequencyHz and DisplayFrequencyHz are the paper's §4.2 rates.
const (
	CalcFrequencyHz    = 1000
	DisplayFrequencyHz = 4
)

// CalcExecTime is the simulated computing job's cost per 1 ms period.
const CalcExecTime = 30 * time.Microsecond

// DisplayExecTime is the display task's cost per 250 ms period.
const DisplayExecTime = 10 * time.Microsecond

// LatencySHM is the shared-memory port between the two tasks.
const LatencySHM = "lat"

// CalcXML and DisplayXML are the DRCom descriptors of the §4.2
// application, delivered as individual bundles in the paper.
const CalcXML = `<component name="calc" desc="simulated computing job at 1000 Hz" type="periodic" cpuusage="0.05">
  <implementation bincode="rtai.demo.Calculation"/>
  <periodictask frequence="1000" runoncup="0" priority="1"/>
  <outport name="lat" interface="RTAI.SHM" type="Integer" size="100"/>
  <property name="drcom.exectime.us" type="Integer" value="30"/>
</component>`

const DisplayXML = `<component name="disp" desc="display scheduling latency at 4 Hz" type="periodic" cpuusage="0.01">
  <implementation bincode="rtai.demo.Display"/>
  <periodictask frequence="4" runoncup="0" priority="2"/>
  <inport name="lat" interface="RTAI.SHM" type="Integer" size="100"/>
  <property name="drcom.exectime.us" type="Integer" value="10"/>
</component>`

// replicaPairXML renders one background calc/disp replica pair pinned
// to a CPU: the §4.2 rates and budgets under unique names with a
// replica-private SHM topic, and an unregistered bincode, so multi-CPU
// campaigns get real per-shard scheduling work without touching the
// foreground scenario.
func replicaPairXML(i, cpu int) [2]string {
	shm := fmt.Sprintf("lt%02d", i)
	calc := fmt.Sprintf(`<component name="ca%02d" desc="replica computing job" type="periodic" cpuusage="0.05">
  <implementation bincode="rtai.demo.Load"/>
  <periodictask frequence="1000" runoncup="%d" priority="1"/>
  <outport name=%q interface="RTAI.SHM" type="Integer" size="100"/>
  <property name="drcom.exectime.us" type="Integer" value="30"/>
</component>`, i, cpu, shm)
	disp := fmt.Sprintf(`<component name="di%02d" desc="replica display" type="periodic" cpuusage="0.01">
  <implementation bincode="rtai.demo.Load"/>
  <periodictask frequence="4" runoncup="%d" priority="2"/>
  <inport name=%q interface="RTAI.SHM" type="Integer" size="100"/>
  <property name="drcom.exectime.us" type="Integer" value="10"/>
</component>`, i, cpu, shm)
	return [2]string{calc, disp}
}

// deployReplicas spreads n replica pairs across CPUs 1..numCPU-1.
func deployReplicas(d *core.DRCR, n, numCPU int) error {
	for i := 0; i < n; i++ {
		pair := replicaPairXML(i, 1+i%(numCPU-1))
		for _, src := range pair {
			desc, err := descriptor.Parse(src)
			if err != nil {
				return err
			}
			if err := d.Deploy(desc); err != nil {
				return err
			}
		}
	}
	return nil
}

// LatencyConfig parameterises one Table 1 cell pair.
type LatencyConfig struct {
	// Mode is the load regime (light or stress).
	Mode rtos.LoadMode
	// Hybrid selects the DRCom/HRC implementation; false runs pure RTAI
	// user-mode tasks with no management plumbing.
	Hybrid bool
	// Samples is the number of post-warm-up latency observations to
	// collect from the 1000 Hz task. Default 60000 (one simulated
	// minute, as a long run of RTAI's latency test).
	Samples int
	// Warmup discards the initial transient. Default 100 ms.
	Warmup time.Duration
	// Seed drives all randomness. Default 1.
	Seed uint64
	// NumCPUs and Shards size the simulated machine and its multi-core
	// execution (both default 1, matching the paper's single-CPU
	// testbed). The §4.2 pair is pinned to CPU 0, so extra shards
	// parallelise only load placed on the remaining CPUs; results are
	// byte-identical at every shard count either way. MonteCarlo fans
	// these configs out run-level, so Shards parallelises within a run.
	NumCPUs int
	Shards  int
}

func (c *LatencyConfig) applyDefaults() {
	if c.Samples <= 0 {
		c.Samples = 60000
	}
	if c.Warmup <= 0 {
		c.Warmup = 100 * time.Millisecond
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Mode != rtos.StressLoad {
		c.Mode = rtos.LightLoad
	}
}

// LatencyResult is one Table 1 row plus auxiliary detail.
type LatencyResult struct {
	Row     metrics.Row
	Display metrics.Row
	Misses  uint64
	Skips   uint64
	Samples []int64
}

// Label renders the Table 1 row label for a configuration.
func (c LatencyConfig) Label() string {
	impl := "Pure RTAI"
	if c.Hybrid {
		impl = "HRC"
	}
	return fmt.Sprintf("%s (%s)", impl, c.Mode)
}

// RunLatency executes the §4.2 application and returns the 1000 Hz task's
// scheduling-latency statistics, the quantity Table 1 reports.
func RunLatency(cfg LatencyConfig) (LatencyResult, error) {
	cfg.applyDefaults()
	if cfg.Hybrid {
		return runHybridLatency(cfg)
	}
	return runPureLatency(cfg)
}

// runPureLatency codes the two tasks directly against the RTAI kernel, the
// paper's "Pure RTAI user model" baseline.
func runPureLatency(cfg LatencyConfig) (LatencyResult, error) {
	k := rtos.NewKernel(rtos.Config{Mode: cfg.Mode, Seed: cfg.Seed,
		NumCPUs: cfg.NumCPUs, Shards: cfg.Shards})
	if err := addStressLoad(k, cfg.Mode); err != nil {
		return LatencyResult{}, err
	}
	shm, err := k.IPC().CreateSHM(LatencySHM, ipc.Integer, 100)
	if err != nil {
		return LatencyResult{}, err
	}
	calc, err := k.CreateTask(rtos.TaskSpec{
		Name: "calc", Type: rtos.Periodic, Priority: 1,
		Period:   time.Second / CalcFrequencyHz,
		ExecTime: CalcExecTime, ExecJitter: 0.05,
		Body: func(j *rtos.JobContext) {
			_ = shm.Set(0, int64(j.Now.Sub(j.Nominal)))
		},
	})
	if err != nil {
		return LatencyResult{}, err
	}
	disp, err := k.CreateTask(rtos.TaskSpec{
		Name: "disp", Type: rtos.Periodic, Priority: 2,
		Period:   time.Second / DisplayFrequencyHz,
		ExecTime: DisplayExecTime, ExecJitter: 0.05,
		Body: func(j *rtos.JobContext) {
			_, _ = shm.Get(0) // "display" the last latency value
		},
	})
	if err != nil {
		return LatencyResult{}, err
	}
	if err := calc.Start(); err != nil {
		return LatencyResult{}, err
	}
	if err := disp.Start(); err != nil {
		return LatencyResult{}, err
	}
	return collect(k, calc, disp, cfg)
}

// runHybridLatency drives the identical workload through the full
// declarative stack: framework, descriptors, DRCR admission, HRC bridge.
// Its noise stream is derived from (but distinct from) the pure run's, so
// the two rows relate like two separate runs on the paper's testbed
// rather than sharing draws sample for sample.
func runHybridLatency(cfg LatencyConfig) (LatencyResult, error) {
	fw := osgi.NewFramework()
	k := rtos.NewKernel(rtos.Config{Mode: cfg.Mode, Seed: cfg.Seed ^ 0x4852_4331, // "HRC1"
		NumCPUs: cfg.NumCPUs, Shards: cfg.Shards})
	if err := addStressLoad(k, cfg.Mode); err != nil {
		return LatencyResult{}, err
	}
	d, err := core.New(fw, k, core.Options{Internal: policy.Utilization{}, Shards: cfg.Shards})
	if err != nil {
		return LatencyResult{}, err
	}
	defer d.Close()
	err = d.RegisterBody("rtai.demo.Calculation", func(*descriptor.Component) rtos.Body {
		return func(j *rtos.JobContext) {
			if shm, err := j.Kernel.IPC().SHM(LatencySHM); err == nil {
				_ = shm.Set(0, int64(j.Now.Sub(j.Nominal)))
			}
		}
	})
	if err != nil {
		return LatencyResult{}, err
	}
	err = d.RegisterBody("rtai.demo.Display", func(*descriptor.Component) rtos.Body {
		return func(j *rtos.JobContext) {
			if shm, err := j.Kernel.IPC().SHM(LatencySHM); err == nil {
				_, _ = shm.Get(0)
			}
		}
	})
	if err != nil {
		return LatencyResult{}, err
	}
	for _, src := range []string{CalcXML, DisplayXML} {
		desc, err := descriptor.Parse(src)
		if err != nil {
			return LatencyResult{}, err
		}
		if err := d.Deploy(desc); err != nil {
			return LatencyResult{}, err
		}
	}
	calc, ok := k.Task("calc")
	if !ok {
		return LatencyResult{}, fmt.Errorf("workload: calc not activated")
	}
	disp, ok := k.Task("disp")
	if !ok {
		return LatencyResult{}, fmt.Errorf("workload: disp not activated")
	}
	return collect(k, calc, disp, cfg)
}

func collect(k *rtos.Kernel, calc, disp *rtos.Task, cfg LatencyConfig) (LatencyResult, error) {
	if err := k.Run(cfg.Warmup); err != nil {
		return LatencyResult{}, err
	}
	calc.ResetStats()
	disp.ResetStats()
	period := time.Second / CalcFrequencyHz
	// Run in slabs until enough samples accumulated.
	for calc.Stats().Latency.N < cfg.Samples {
		remaining := cfg.Samples - calc.Stats().Latency.N
		if err := k.Run(time.Duration(remaining) * period); err != nil {
			return LatencyResult{}, err
		}
	}
	st := calc.Stats()
	row := st.Latency
	row.Label = cfg.Label()
	return LatencyResult{
		Row:     row,
		Display: disp.Stats().Latency,
		Misses:  st.Misses,
		Skips:   st.Skips,
		Samples: calc.LatencySamples(),
	}, nil
}

// addStressLoad attaches the §4.4 stress commands in stress mode: actual
// lowest-priority hog tasks saturating the Linux band. They exercise the
// dual-kernel property mechanically (RT dispatch is unaffected because
// every RT priority outranks them); the µs-level timing effects of a hot
// CPU live in the calibrated stress timing model.
func addStressLoad(k *rtos.Kernel, mode rtos.LoadMode) error {
	if mode != rtos.StressLoad {
		return nil
	}
	bl, err := NewBackgroundLoad(k, 0, 3) // "the following three commands"
	if err != nil {
		return err
	}
	return bl.Start()
}

// Table1Configs lists the four configurations of the paper's Table 1 in
// the paper's order: HRC (light), Pure RTAI (light), HRC (stress),
// Pure RTAI (stress).
func Table1Configs(samples int, seed uint64) []LatencyConfig {
	return []LatencyConfig{
		{Hybrid: true, Mode: rtos.LightLoad, Samples: samples, Seed: seed},
		{Hybrid: false, Mode: rtos.LightLoad, Samples: samples, Seed: seed},
		{Hybrid: true, Mode: rtos.StressLoad, Samples: samples, Seed: seed},
		{Hybrid: false, Mode: rtos.StressLoad, Samples: samples, Seed: seed},
	}
}

// Table1 runs all four configurations sequentially and returns the rows
// in the paper's order (bench.Table1Parallel is the concurrent variant).
func Table1(samples int, seed uint64) ([]metrics.Row, error) {
	configs := Table1Configs(samples, seed)
	rows := make([]metrics.Row, 0, len(configs))
	for _, cfg := range configs {
		res, err := RunLatency(cfg)
		if err != nil {
			return nil, fmt.Errorf("workload: %s: %w", cfg.Label(), err)
		}
		rows = append(rows, res.Row)
	}
	return rows, nil
}
