package workload

import (
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// Pinned goldens for the default degradation campaign (seed 1). Any
// change to admission order, the guard ladder, the supervisor, or span
// emission shows up here first.
const (
	degradeSpanGolden = "d95642c09e300077b591972ee303fc8c5db4dbc39464216aeb77320bee237326"
	degradeSpanCount  = 34
	binarySpanGolden  = "7025b13dd7cf37800ce13b0bf5a1006fc20a8718077aab51842abfa1fb31c815"
	binarySpanCount   = 30
)

// TestDegradeCampaignGolden pins the graceful run end to end: zaux —
// denied outright by a binary resolver — is admitted degraded and stays
// serving; calc rides the guard's step-down ladder through the fault and
// auto-re-promotes to the full contract after it clears; the crashed
// zaux comes back through a supervised restart. Byte-identical spans.
func TestDegradeCampaignGolden(t *testing.T) {
	res, err := RunDegradeCampaign(DegradeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// Availability: nobody is ever denied service except zaux's brief
	// crash-to-restart gap.
	if res.Availability["calc"] != 1 || res.Availability["disp"] != 1 {
		t.Errorf("calc/disp availability = %v/%v, want 1/1",
			res.Availability["calc"], res.Availability["disp"])
	}
	if a := res.Availability["zaux"]; a < 0.95 || a >= 1 {
		t.Errorf("zaux availability = %v, want just under 1 (crash gap only)", a)
	}
	// The infeasible full contract was never denied — it was admitted
	// degraded (downgrade-before-deny), and the ladder never revoked.
	if res.Denies != 0 || res.Revokes != 0 {
		t.Errorf("denies=%d revokes=%d, want 0/0", res.Denies, res.Revokes)
	}
	var admittedDegraded bool
	for _, sp := range res.Spans {
		if sp.Kind == obs.KindDowngrade && sp.Component == "zaux" &&
			strings.Contains(sp.Detail, "downgrade-before-deny") {
			admittedDegraded = true
		}
	}
	if !admittedDegraded {
		t.Error("no downgrade-before-deny span for zaux")
	}
	// calc returned to mode 0 a bounded time after the fault cleared.
	if res.TimeToRepromo != 220*time.Millisecond {
		t.Errorf("time-to-repromotion = %v, want 220ms", res.TimeToRepromo)
	}
	for _, info := range res.Final {
		switch info.Name {
		case "calc", "disp":
			if info.State != core.Active || info.Mode != 0 {
				t.Errorf("%s final = %v mode %d, want ACTIVE at full contract", info.Name, info.State, info.Mode)
			}
		case "zaux":
			if info.State != core.Active || info.ModeName != "lite" {
				t.Errorf("zaux final = %v mode %q, want ACTIVE in lite", info.State, info.ModeName)
			}
		}
	}
	if res.Downgrades == 0 || res.Upgrades == 0 {
		t.Errorf("downgrades=%d upgrades=%d, want both nonzero", res.Downgrades, res.Upgrades)
	}
	if res.Restarts != 1 || res.Escalations != 0 {
		t.Errorf("restarts=%d escalations=%d, want 1/0", res.Restarts, res.Escalations)
	}
	if res.SpanCount != degradeSpanCount || res.SpanDigest != degradeSpanGolden {
		t.Errorf("span stream = %d spans, digest %s; want %d, %s",
			res.SpanCount, res.SpanDigest, degradeSpanCount, degradeSpanGolden)
	}
}

// TestDegradeBinaryAblation pins the baseline the mode ladder is measured
// against: without declared fallbacks the same faults force denial and
// revocation, and availability collapses for every component.
func TestDegradeBinaryAblation(t *testing.T) {
	res, err := RunDegradeCampaign(DegradeConfig{Binary: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Denies == 0 || res.Revokes == 0 {
		t.Errorf("denies=%d revokes=%d, want both nonzero in binary mode", res.Denies, res.Revokes)
	}
	if res.Downgrades != 0 || res.Upgrades != 0 {
		t.Errorf("downgrades=%d upgrades=%d, want 0/0 without modes", res.Downgrades, res.Upgrades)
	}
	if res.TimeToRepromo >= 0 {
		t.Errorf("time-to-repromotion = %v, want never (-1)", res.TimeToRepromo)
	}
	for _, name := range []string{"calc", "disp"} {
		if a := res.Availability[name]; a >= 0.6 {
			t.Errorf("%s binary availability = %v, want well below the graceful run's 1.0", name, a)
		}
	}
	if res.SpanCount != binarySpanCount || res.SpanDigest != binarySpanGolden {
		t.Errorf("span stream = %d spans, digest %s; want %d, %s",
			res.SpanCount, res.SpanDigest, binarySpanCount, binarySpanGolden)
	}
}

// TestDegradeDeterministic: same config twice, same digest.
func TestDegradeDeterministic(t *testing.T) {
	a, err := RunDegradeCampaign(DegradeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunDegradeCampaign(DegradeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if a.SpanDigest != b.SpanDigest || a.SpanCount != b.SpanCount {
		t.Errorf("non-deterministic campaign: %s/%d vs %s/%d",
			a.SpanDigest, a.SpanCount, b.SpanDigest, b.SpanCount)
	}
}

// Pre-change goldens for the churn storm on single-mode components: the
// mode subsystem must be byte-invisible when no component declares a
// <mode>. Captured on the commit before the mode ladder landed.
const (
	churnObsGolden   = "70836d4fb1541eedd7a48216f637e829ae3b1deb7ed1040972c8cf26f3a24475"
	churnTraceGolden = "e9aa70d178a94554ecaf53115d4ea44e5262ca4e9b5a15075669139860c6307d"
	churnStateGolden = "a9941a9b426ff70b4723c3f4936a8f61811e197d9d9dbabc6ff2be099b1bedac"
	churnSpanCount   = 419
)

// TestChurnUnchangedBySingleModeComponents differentially pins both
// resolve engines against the digests captured before multi-mode
// contracts existed: a population that declares no degraded modes must
// produce the exact same admission decisions, event trace, and span
// stream as it did then.
func TestChurnUnchangedBySingleModeComponents(t *testing.T) {
	spec := ChurnSpec{Components: 80, Steps: 120, Seed: 7}
	for _, fullSweep := range []bool{false, true} {
		spec.FullSweep = fullSweep
		got, err := RunChurn(spec)
		if err != nil {
			t.Fatalf("fullSweep=%v: %v", fullSweep, err)
		}
		if got.ObsDigest != churnObsGolden {
			t.Errorf("fullSweep=%v: obs digest %s, want pre-change %s", fullSweep, got.ObsDigest, churnObsGolden)
		}
		if got.TraceDigest != churnTraceGolden {
			t.Errorf("fullSweep=%v: trace digest %s, want pre-change %s", fullSweep, got.TraceDigest, churnTraceGolden)
		}
		if got.StateDigest != churnStateGolden {
			t.Errorf("fullSweep=%v: state digest %s, want pre-change %s", fullSweep, got.StateDigest, churnStateGolden)
		}
		if got.Spans != churnSpanCount {
			t.Errorf("fullSweep=%v: %d spans, want pre-change %d", fullSweep, got.Spans, churnSpanCount)
		}
	}
}
