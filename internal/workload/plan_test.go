package workload

import (
	"testing"

	"repro/internal/descriptor"
)

// The edgecluster example's bundles, grouped per node exactly as its
// console script deploys them. The XML mirrors examples/edgecluster —
// the canonical "real application" bundle set — so the plan fast path
// is smoked against descriptors that were not written for it: pinned
// CPUs, multi-mode contracts, and an aggregator whose inports are
// remote in the example and therefore stay unsatisfied leftovers here.
var edgeclusterBundles = map[string][]string{
	"n0": {`<component name="agg" desc="feed aggregator" type="periodic" cpuusage="0.35">
  <implementation bincode="edge.Agg"/>
  <periodictask frequence="100" runoncup="0" priority="2"/>
  <inport name="c1" interface="RTAI.SHM" type="Integer" size="4"/>
  <inport name="c2" interface="RTAI.SHM" type="Integer" size="4"/>
</component>`},
	"n1": {`<component name="bts1" desc="cell radio 1" type="periodic" cpuusage="0.25">
  <implementation bincode="edge.BTS"/>
  <periodictask frequence="200" runoncup="0" priority="3"/>
  <outport name="c1" interface="RTAI.SHM" type="Integer" size="4"/>
</component>`,
		`<component name="codec1" desc="transcoder" type="periodic" cpuusage="0.45">
  <implementation bincode="edge.Codec"/>
  <periodictask frequence="50" runoncup="0" priority="6"/>
</component>`},
	"n2": {`<component name="bts2" desc="cell radio 2" type="periodic" cpuusage="0.25">
  <implementation bincode="edge.BTS"/>
  <periodictask frequence="200" runoncup="0" priority="3"/>
  <outport name="c2" interface="RTAI.SHM" type="Integer" size="4"/>
</component>`,
		`<component name="codec2" desc="transcoder" type="periodic" cpuusage="0.45">
  <implementation bincode="edge.Codec"/>
  <periodictask frequence="50" runoncup="0" priority="6"/>
</component>`},
	"n3": {`<component name="bts3" desc="cell radio 3" type="periodic" cpuusage="0.30">
  <implementation bincode="edge.BTS"/>
  <periodictask frequence="200" runoncup="0" priority="3"/>
  <outport name="c3" interface="RTAI.SHM" type="Integer" size="4"/>
  <mode name="eco" frequence="50" cpuusage="0.08"/>
</component>`,
		`<component name="bill" desc="billing collector" type="periodic" cpuusage="0.45">
  <implementation bincode="edge.Bill"/>
  <periodictask frequence="50" runoncup="0" priority="5"/>
</component>`},
}

// TestEdgeclusterBundlePlanDigest compiles and plan-applies each
// edgecluster node bundle and asserts byte-identical event traces, obs
// streams, and final states against the batched event path — the CI
// plan smoke step.
func TestEdgeclusterBundlePlanDigest(t *testing.T) {
	for node, xmls := range edgeclusterBundles {
		t.Run(node, func(t *testing.T) {
			var descs []*descriptor.Component
			for _, x := range xmls {
				c, err := descriptor.Parse(x)
				if err != nil {
					t.Fatalf("parse: %v", err)
				}
				descs = append(descs, c)
			}
			spec := PlanDeploySpec{Components: len(descs), Seed: 21, NumCPUs: 4}
			spec.applyDefaults()
			event, err := runPlanDeployOnce(spec, descs, true, false, nil)
			if err != nil {
				t.Fatalf("event path: %v", err)
			}
			planned, err := runPlanDeployOnce(spec, descs, false, false, nil)
			if err != nil {
				t.Fatalf("plan path: %v", err)
			}
			if planned.applies == 0 {
				t.Fatalf("plan fast path fell back on the %s bundle", node)
			}
			for _, d := range []struct{ what, a, b string }{
				{"event trace", event.traceDigest, planned.traceDigest},
				{"obs stream", event.obsDigest, planned.obsDigest},
				{"final states", event.stateDigest, planned.stateDigest},
			} {
				if d.a != d.b {
					t.Errorf("%s diverged: event %s != plan %s", d.what, d.a, d.b)
				}
			}
		})
	}
}

// TestRunPlanDeployRepsParity pins the rep-merging contract: walls keep
// their minimum, parity flags must hold on every rep.
func TestRunPlanDeployRepsParity(t *testing.T) {
	st, err := RunPlanDeploy(PlanDeploySpec{Components: 40, Seed: 7, Reps: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, check := range []struct {
		what string
		ok   bool
	}{
		{"digest match", st.DigestMatch},
		{"state match", st.StateMatch},
		{"plan applied", st.PlanApplied},
		{"cache hit", st.CacheHit},
	} {
		if !check.ok {
			t.Errorf("%s failed across reps", check.what)
		}
	}
	for _, w := range []struct {
		what string
		ns   int64
	}{
		{"per-descriptor", st.PerDescriptorWall.Nanoseconds()},
		{"event batch", st.EventBatchWall.Nanoseconds()},
		{"plan cold", st.PlanColdWall.Nanoseconds()},
		{"plan warm", st.PlanWarmWall.Nanoseconds()},
	} {
		if w.ns <= 0 {
			t.Errorf("%s wall not measured: %d", w.what, w.ns)
		}
	}
}
