package workload

// Resolve-churn storms: deploy/remove/enable/disable/revoke sequences
// over a synthetic component population with realistic port fan-out,
// driving the DRCR's constraint-resolution engine rather than the kernel
// hot path. The same seeded storm replays bit-identically against the
// incremental worklist engine and the reference full-sweep engine, which
// is how bench.MeasureChurn both differential-tests the engines and
// quantifies the speedup committed in BENCH_resolve.json.

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/descriptor"
	"repro/internal/manifest"
	"repro/internal/obs"
	"repro/internal/osgi"
	"repro/internal/rtos"
)

// ChurnSpec sizes one resolve-churn storm.
type ChurnSpec struct {
	// Components is the approximate population size; it is rounded to
	// whole provider→relay→consumers groups (default 100).
	Components int
	// FanOut is the number of consumers per relay topic, 1..9 (default 3).
	FanOut int
	// Steps is the number of lifecycle operations in the storm
	// (default 500).
	Steps int
	// Seed drives both the op stream and the kernel (default 1).
	Seed int64
	// NumCPUs for the simulated kernel (default 4).
	NumCPUs int
	// Shards runs the simulated kernel and the DRCR sharded
	// (rtos.Config.Shards / core.Options.Shards); 0 or 1 selects the
	// sequential engines. The storm digests must not depend on it.
	Shards int
	// FullSweep selects the reference fixed-point engine instead of the
	// incremental worklist engine.
	FullSweep bool
	// ObsLevel is the observability sampling level for the run (zero
	// value: Sampled, the default level).
	ObsLevel obs.Level
	// SchedFunnel forces the funnel scheduler bridge even on sharded
	// kernels — the reference path the per-shard emitters are
	// differential-tested against. Irrelevant below obs.Full.
	SchedFunnel bool
}

func (s *ChurnSpec) applyDefaults() {
	if s.Components <= 0 {
		s.Components = 100
	}
	if s.FanOut <= 0 {
		s.FanOut = 3
	}
	if s.FanOut > 9 {
		s.FanOut = 9
	}
	if s.Steps <= 0 {
		s.Steps = 500
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.NumCPUs <= 0 {
		s.NumCPUs = 4
	}
}

// ChurnStats reports one storm run.
type ChurnStats struct {
	// Components actually built (groups × (FanOut+2) + heavy tail).
	Components int
	// Steps executed.
	Steps int
	// Events is the total lifecycle-event count.
	Events int
	// TraceDigest is a SHA-256 over the full ordered event log; two
	// engines replaying the same storm must produce equal digests.
	TraceDigest string
	// StateDigest is a SHA-256 over the canonical final component states.
	StateDigest string
	// ObsDigest is the observability plane's engine-comparable span
	// stream digest (IDs, cause edges and resolve-round internals
	// excluded): the two resolve engines must produce equal values.
	ObsDigest string
	// ObsFullDigest includes span IDs and cause edges; it separates the
	// two resolve engines but must not depend on shard count or on the
	// funnel-vs-per-shard emission path.
	ObsFullDigest string
	// Spans is the lifetime span count the storm emitted.
	Spans uint64
	// SetupWall / StormWall split untimed population from the timed storm.
	SetupWall time.Duration
	StormWall time.Duration
}

// churnDescriptorXML renders one synthetic component (RTAI names are
// capped at six characters, hence the dense naming).
func churnDescriptorXML(name string, cpu int, usage float64, inports, outports []string) string {
	var b strings.Builder
	fmt.Fprintf(&b, `<component name=%q type="periodic" cpuusage="%g">`+"\n", name, usage)
	b.WriteString(`  <implementation bincode="churn.Body"/>` + "\n")
	fmt.Fprintf(&b, `  <periodictask frequence="100" runoncup="%d" priority="5"/>`+"\n", cpu)
	for _, p := range inports {
		fmt.Fprintf(&b, `  <inport name=%q interface="RTAI.SHM" type="Integer" size="64"/>`+"\n", p)
	}
	for _, p := range outports {
		fmt.Fprintf(&b, `  <outport name=%q interface="RTAI.SHM" type="Integer" size="64"/>`+"\n", p)
	}
	b.WriteString(`</component>`)
	return b.String()
}

// buildChurnPopulation creates the storm's component set: producer→relay→
// consumers groups (two-deep cascade chains with fan-out) plus a heavy
// tail whose budgets overflow the CPUs, keeping a persistent set of
// admission-denied waiters in play — the worst case for a full sweep.
func buildChurnPopulation(spec ChurnSpec) (map[string]*descriptor.Component, map[string]string, []string, error) {
	groups := spec.Components / (spec.FanOut + 2)
	if groups < 1 {
		groups = 1
	}
	if groups > 999 {
		groups = 999
	}
	heavy := groups / 10
	if heavy < 2 {
		heavy = 2
	}
	descs := map[string]*descriptor.Component{}
	srcs := map[string]string{}
	var names []string
	add := func(name, src string) error {
		c, err := descriptor.Parse(src)
		if err != nil {
			return fmt.Errorf("workload: churn descriptor %s: %w", name, err)
		}
		descs[name] = c
		srcs[name] = src
		names = append(names, name)
		return nil
	}
	for g := 0; g < groups; g++ {
		cpu := g % spec.NumCPUs
		tg := fmt.Sprintf("t%03d", g)
		ug := fmt.Sprintf("u%03d", g)
		pn := fmt.Sprintf("p%03d", g)
		rn := fmt.Sprintf("r%03d", g)
		if err := add(pn, churnDescriptorXML(pn, cpu, 0.0005, nil, []string{tg})); err != nil {
			return nil, nil, nil, err
		}
		if err := add(rn, churnDescriptorXML(rn, cpu, 0.0005, []string{tg}, []string{ug})); err != nil {
			return nil, nil, nil, err
		}
		for f := 0; f < spec.FanOut; f++ {
			cn := fmt.Sprintf("c%03dx%d", g, f)
			if err := add(cn, churnDescriptorXML(cn, cpu, 0.0005, []string{ug}, nil)); err != nil {
				return nil, nil, nil, err
			}
		}
	}
	for h := 0; h < heavy; h++ {
		zn := fmt.Sprintf("z%03d", h)
		if err := add(zn, churnDescriptorXML(zn, h%spec.NumCPUs, 0.45, nil, nil)); err != nil {
			return nil, nil, nil, err
		}
	}
	return descs, srcs, names, nil
}

// RunChurn populates a fresh DRCR (one bundle carrying the whole
// population, untimed) and then replays the seeded op storm against it
// (timed). The op stream depends only on the seed and the DRCR's
// observable state, so the same spec with FullSweep toggled replays the
// identical scenario on the other engine.
func RunChurn(spec ChurnSpec) (ChurnStats, error) {
	spec.applyDefaults()
	descs, srcs, names, err := buildChurnPopulation(spec)
	if err != nil {
		return ChurnStats{}, err
	}

	fw := osgi.NewFramework()
	timing := rtos.TimingModel{}
	k := rtos.NewKernel(rtos.Config{NumCPUs: spec.NumCPUs, Timing: &timing, Seed: uint64(spec.Seed), Shards: spec.Shards})
	d, err := core.New(fw, k, core.Options{
		Shards:           spec.Shards,
		FullSweepResolve: spec.FullSweep,
		Obs:              obs.NewPlane(obs.Options{Level: spec.ObsLevel, SchedFunnel: spec.SchedFunnel}),
	})
	if err != nil {
		return ChurnStats{}, err
	}
	defer d.Close()

	setupStart := time.Now()
	m := manifest.New("churn.pop", manifest.MustParseVersion("1.0"))
	def := osgi.Definition{Manifest: m, Resources: map[string]string{}}
	for _, name := range names {
		res := "OSGI-INF/" + name + ".xml"
		m.DRComComponents = append(m.DRComComponents, res)
		def.Resources[res] = srcs[name]
	}
	b, err := fw.Install(def)
	if err != nil {
		return ChurnStats{}, err
	}
	if err := b.Start(); err != nil {
		return ChurnStats{}, err
	}
	setup := time.Since(setupStart)

	rng := rand.New(rand.NewSource(spec.Seed))
	stormStart := time.Now()
	for i := 0; i < spec.Steps; i++ {
		target := names[rng.Intn(len(names))]
		switch rng.Intn(3) {
		case 0: // presence toggle: remove, or redeploy if gone
			if _, ok := d.Component(target); ok {
				_ = d.Remove(target)
			} else {
				_ = d.Deploy(descs[target])
			}
		case 1: // enablement toggle
			if info, ok := d.Component(target); ok {
				if info.State == core.Disabled {
					_ = d.Enable(target)
				} else {
					_ = d.Disable(target)
				}
			}
		case 2: // violation revoke/restore toggle
			if info, ok := d.Component(target); ok {
				if info.Revoked {
					_ = d.RestoreBudget(target)
				} else {
					_ = d.RevokeBudget(target, "churn storm violation")
				}
			}
		}
	}
	storm := time.Since(stormStart)

	evs := d.Events()
	th := sha256.New()
	for _, ev := range evs {
		fmt.Fprintf(th, "%d|%s|%v|%v|%s\n", int64(ev.At), ev.Component, ev.From, ev.To, ev.Reason)
	}
	sh := sha256.New()
	for _, info := range d.Components() {
		fmt.Fprintf(sh, "%s|%v|%v|%s|", info.Name, info.State, info.Revoked, info.LastReason)
		keys := make([]string, 0, len(info.Bindings))
		for k := range info.Bindings {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(sh, "%s->%s,", k, info.Bindings[k])
		}
		sh.Write([]byte("\n"))
	}
	return ChurnStats{
		Components:  len(names),
		Steps:       spec.Steps,
		Events:      len(evs),
		TraceDigest: hex.EncodeToString(th.Sum(nil)),
		StateDigest: hex.EncodeToString(sh.Sum(nil)),
		// Captured before the deferred Close so teardown spans don't
		// depend on defer ordering.
		ObsDigest:     d.Obs().StreamDigest(),
		ObsFullDigest: d.Obs().Digest(),
		Spans:         d.Obs().Emitted(),
		SetupWall:     setup,
		StormWall:     storm,
	}, nil
}
