package workload

import (
	"testing"
	"time"

	"repro/internal/obs"
)

// ISSUE-9 acceptance gates: at obs.Full the per-shard span emitters
// must reproduce the funnel bridge byte for byte — the full digest
// (span IDs and cause edges included) AND the stream digest — at shard
// counts 1/2/4/8, across the churn, fault and degradation campaigns;
// and the 8-node cluster campaign's stitched cross-node trace digest
// must be pinned across runs, shard counts and Parallel.

func TestChurnShardedEmissionMatchesFunnel(t *testing.T) {
	base := ChurnSpec{Components: 60, Steps: 120, Seed: 11, NumCPUs: 8, ObsLevel: obs.Full}
	for _, shards := range []int{1, 2, 4, 8} {
		funnel := base
		funnel.Shards = shards
		funnel.SchedFunnel = true
		ref, err := RunChurn(funnel)
		if err != nil {
			t.Fatalf("shards=%d funnel: %v", shards, err)
		}
		sharded := base
		sharded.Shards = shards
		got, err := RunChurn(sharded)
		if err != nil {
			t.Fatalf("shards=%d per-shard: %v", shards, err)
		}
		if got.ObsFullDigest != ref.ObsFullDigest {
			t.Errorf("shards=%d: per-shard full digest %s != funnel %s",
				shards, got.ObsFullDigest, ref.ObsFullDigest)
		}
		if got.ObsDigest != ref.ObsDigest {
			t.Errorf("shards=%d: per-shard stream digest %s != funnel %s",
				shards, got.ObsDigest, ref.ObsDigest)
		}
		if got.Spans != ref.Spans {
			t.Errorf("shards=%d: per-shard emitted %d spans, funnel %d", shards, got.Spans, ref.Spans)
		}
	}
}

func TestFaultCampaignShardedEmissionMatchesFunnel(t *testing.T) {
	base := FaultCampaignConfig{Seed: 3, RunFor: 400 * time.Millisecond, Guarded: true,
		NumCPUs: 8, Replicas: 7, ObsLevel: obs.Full}
	for _, shards := range []int{1, 2, 4, 8} {
		funnel := base
		funnel.Shards = shards
		funnel.SchedFunnel = true
		ref, err := RunFaultCampaign(funnel)
		if err != nil {
			t.Fatalf("shards=%d funnel: %v", shards, err)
		}
		if ref.Obs.Sched.Events == 0 {
			t.Fatalf("shards=%d: Full level recorded no sched spans — bridge not attached", shards)
		}
		sharded := base
		sharded.Shards = shards
		got, err := RunFaultCampaign(sharded)
		if err != nil {
			t.Fatalf("shards=%d per-shard: %v", shards, err)
		}
		if got.SpanDigest != ref.SpanDigest {
			t.Errorf("shards=%d: per-shard span digest %s != funnel %s", shards, got.SpanDigest, ref.SpanDigest)
		}
		if got.StreamDigest != ref.StreamDigest {
			t.Errorf("shards=%d: per-shard stream digest %s != funnel %s", shards, got.StreamDigest, ref.StreamDigest)
		}
		if got.SpanCount != ref.SpanCount {
			t.Errorf("shards=%d: per-shard emitted %d spans, funnel %d", shards, got.SpanCount, ref.SpanCount)
		}
	}
}

func TestDegradeShardedEmissionMatchesFunnel(t *testing.T) {
	base := DegradeConfig{Seed: 9, RunFor: 600 * time.Millisecond, NumCPUs: 8, Replicas: 7,
		ObsLevel: obs.Full}
	for _, shards := range []int{1, 2, 4, 8} {
		funnel := base
		funnel.Shards = shards
		funnel.SchedFunnel = true
		ref, err := RunDegradeCampaign(funnel)
		if err != nil {
			t.Fatalf("shards=%d funnel: %v", shards, err)
		}
		sharded := base
		sharded.Shards = shards
		got, err := RunDegradeCampaign(sharded)
		if err != nil {
			t.Fatalf("shards=%d per-shard: %v", shards, err)
		}
		if got.SpanDigest != ref.SpanDigest {
			t.Errorf("shards=%d: per-shard span digest %s != funnel %s", shards, got.SpanDigest, ref.SpanDigest)
		}
		if got.StreamDigest != ref.StreamDigest {
			t.Errorf("shards=%d: per-shard stream digest %s != funnel %s", shards, got.StreamDigest, ref.StreamDigest)
		}
	}
}

// The 8-node churn-under-partition campaign's stitched cross-node
// trace digest is pinned: byte-identical across runs, per-node shard
// counts and Parallel, and the merged latency summary carries real
// distributions (resolve and deploy at minimum) without ever entering
// a digest.
func TestClusterStitchedDigestPinned(t *testing.T) {
	spec := ClusterSpec{Nodes: 8, Seed: 42, NumCPUs: 4, RunFor: 120 * time.Millisecond}
	ref, err := RunClusterCampaign(spec)
	if err != nil {
		t.Fatal(err)
	}
	if ref.StitchDigest == "" {
		t.Fatal("campaign produced no stitched digest")
	}
	if len(ref.Latency) == 0 {
		t.Fatal("campaign recorded no latency distributions")
	}
	seen := map[string]obs.LatencyStat{}
	for _, st := range ref.Latency {
		seen[st.Name] = st
		if st.Count > 0 && st.P99NS < st.P50NS {
			t.Errorf("latency %s: p99 %d < p50 %d", st.Name, st.P99NS, st.P50NS)
		}
	}
	for _, want := range []string{"resolve", "deploy"} {
		if st, ok := seen[want]; !ok || st.Count == 0 {
			t.Errorf("merged latency summary missing %q samples: %+v", want, ref.Latency)
		}
	}
	again, err := RunClusterCampaign(spec)
	if err != nil {
		t.Fatal(err)
	}
	if again.StitchDigest != ref.StitchDigest {
		t.Fatalf("same spec, different stitched digests:\n%s\n%s", ref.StitchDigest, again.StitchDigest)
	}
	for _, shards := range []int{2, 4} {
		s := spec
		s.Shards = shards
		got, err := RunClusterCampaign(s)
		if err != nil {
			t.Fatal(err)
		}
		if got.StitchDigest != ref.StitchDigest {
			t.Fatalf("Shards=%d changed the stitched digest:\n%s\n%s", shards, ref.StitchDigest, got.StitchDigest)
		}
	}
	par := spec
	par.Parallel = true
	got, err := RunClusterCampaign(par)
	if err != nil {
		t.Fatal(err)
	}
	if got.StitchDigest != ref.StitchDigest {
		t.Fatalf("Parallel changed the stitched digest:\n%s\n%s", ref.StitchDigest, got.StitchDigest)
	}
}
