package osgi

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/manifest"
)

// testActivator records start/stop calls and can be told to fail.
type testActivator struct {
	started, stopped int
	failStart        bool
	failStop         bool
	onStart          func(ctx *Context) error
}

func (a *testActivator) Start(ctx *Context) error {
	a.started++
	if a.failStart {
		return errors.New("boom on start")
	}
	if a.onStart != nil {
		return a.onStart(ctx)
	}
	return nil
}

func (a *testActivator) Stop(ctx *Context) error {
	a.stopped++
	if a.failStop {
		return errors.New("boom on stop")
	}
	return nil
}

func def(name, version string) Definition {
	return Definition{Manifest: manifest.New(name, manifest.MustParseVersion(version))}
}

func defWithActivator(name, version string, act Activator) Definition {
	d := def(name, version)
	d.Activator = act
	return d
}

func TestInstallAssignsIDs(t *testing.T) {
	fw := NewFramework()
	b1, err := fw.Install(def("a", "1.0"))
	if err != nil {
		t.Fatal(err)
	}
	b2, err := fw.Install(def("b", "1.0"))
	if err != nil {
		t.Fatal(err)
	}
	if b1.ID() == b2.ID() {
		t.Fatal("duplicate bundle ids")
	}
	if b1.State() != Installed {
		t.Fatalf("state = %v, want INSTALLED", b1.State())
	}
	if got := len(fw.Bundles()); got != 2 {
		t.Fatalf("Bundles len = %d", got)
	}
}

func TestInstallRejectsDuplicates(t *testing.T) {
	fw := NewFramework()
	if _, err := fw.Install(def("a", "1.0")); err != nil {
		t.Fatal(err)
	}
	if _, err := fw.Install(def("a", "1.0")); err == nil {
		t.Fatal("duplicate install accepted")
	}
	// Same name, different version is fine.
	if _, err := fw.Install(def("a", "2.0")); err != nil {
		t.Fatal(err)
	}
}

func TestInstallValidation(t *testing.T) {
	fw := NewFramework()
	if _, err := fw.Install(Definition{}); err == nil {
		t.Fatal("nil manifest accepted")
	}
	if _, err := fw.Install(Definition{Manifest: &manifest.Manifest{}}); err == nil {
		t.Fatal("empty symbolic name accepted")
	}
}

func TestStartStopLifecycle(t *testing.T) {
	fw := NewFramework()
	act := &testActivator{}
	b, err := fw.Install(defWithActivator("a", "1.0", act))
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Start(); err != nil {
		t.Fatal(err)
	}
	if b.State() != Active || act.started != 1 {
		t.Fatalf("state %v started %d", b.State(), act.started)
	}
	// Idempotent start.
	if err := b.Start(); err != nil {
		t.Fatal(err)
	}
	if act.started != 1 {
		t.Fatalf("second Start invoked activator: %d", act.started)
	}
	if err := b.Stop(); err != nil {
		t.Fatal(err)
	}
	if b.State() != Resolved || act.stopped != 1 {
		t.Fatalf("after stop: state %v stopped %d", b.State(), act.stopped)
	}
	// Stop when not active is a no-op.
	if err := b.Stop(); err != nil {
		t.Fatal(err)
	}
}

func TestActivatorStartFailure(t *testing.T) {
	fw := NewFramework()
	var fwEvents []FrameworkEvent
	fw.AddFrameworkListener(FrameworkListenerFunc(func(ev FrameworkEvent) {
		fwEvents = append(fwEvents, ev)
	}))
	act := &testActivator{failStart: true}
	b, _ := fw.Install(defWithActivator("a", "1.0", act))
	if err := b.Start(); err == nil {
		t.Fatal("start succeeded despite failing activator")
	}
	if b.State() != Resolved {
		t.Fatalf("state after failed start = %v, want RESOLVED", b.State())
	}
	if len(fwEvents) != 1 || fwEvents[0].Err == nil {
		t.Fatalf("framework events = %+v", fwEvents)
	}
}

func TestActivatorStopFailureStillStops(t *testing.T) {
	fw := NewFramework()
	act := &testActivator{failStop: true}
	b, _ := fw.Install(defWithActivator("a", "1.0", act))
	if err := b.Start(); err != nil {
		t.Fatal(err)
	}
	if err := b.Stop(); err == nil {
		t.Fatal("stop error swallowed")
	}
	if b.State() != Resolved {
		t.Fatalf("state = %v, want RESOLVED even after stop error", b.State())
	}
}

func TestBundleEventsSequence(t *testing.T) {
	fw := NewFramework()
	var events []BundleEventType
	fw.AddBundleListener(BundleListenerFunc(func(ev BundleEvent) {
		events = append(events, ev.Type)
	}))
	b, _ := fw.Install(def("a", "1.0"))
	if err := b.Start(); err != nil {
		t.Fatal(err)
	}
	if err := b.Stop(); err != nil {
		t.Fatal(err)
	}
	if err := b.Uninstall(); err != nil {
		t.Fatal(err)
	}
	want := []BundleEventType{
		BundleInstalled, BundleResolved, BundleStarting, BundleStarted,
		BundleStopping, BundleStopped, BundleUninstalled,
	}
	if len(events) != len(want) {
		t.Fatalf("events = %v, want %v", events, want)
	}
	for i := range want {
		if events[i] != want[i] {
			t.Fatalf("events = %v, want %v", events, want)
		}
	}
}

func TestUninstallActiveBundleStopsIt(t *testing.T) {
	fw := NewFramework()
	act := &testActivator{}
	b, _ := fw.Install(defWithActivator("a", "1.0", act))
	if err := b.Start(); err != nil {
		t.Fatal(err)
	}
	if err := b.Uninstall(); err != nil {
		t.Fatal(err)
	}
	if act.stopped != 1 {
		t.Fatal("activator not stopped on uninstall")
	}
	if b.State() != Uninstalled {
		t.Fatalf("state = %v", b.State())
	}
	if err := b.Start(); err == nil {
		t.Fatal("started an uninstalled bundle")
	}
	if err := b.Uninstall(); err == nil {
		t.Fatal("double uninstall accepted")
	}
}

func TestResolutionWiring(t *testing.T) {
	fw := NewFramework()
	exp := manifest.New("exporter", manifest.MustParseVersion("1.0"))
	exp.Exports = []manifest.PackageExport{{Name: "ua.pats.rt", Version: manifest.MustParseVersion("1.2")}}
	expB, _ := fw.Install(Definition{Manifest: exp})

	imp := manifest.New("importer", manifest.MustParseVersion("1.0"))
	imp.Imports = []manifest.PackageImport{{Name: "ua.pats.rt", Range: mustRange("[1.0,2.0)")}}
	impB, _ := fw.Install(Definition{Manifest: imp})

	if err := impB.Start(); err != nil {
		t.Fatal(err)
	}
	wired, ok := impB.WiredTo("ua.pats.rt")
	if !ok || wired != expB {
		t.Fatalf("wired to %v", wired)
	}
}

func TestResolutionFailsOnMissingImport(t *testing.T) {
	fw := NewFramework()
	imp := manifest.New("importer", manifest.MustParseVersion("1.0"))
	imp.Imports = []manifest.PackageImport{{Name: "no.such.pkg", Range: manifest.AnyVersion}}
	b, _ := fw.Install(Definition{Manifest: imp})
	err := b.Start()
	if err == nil {
		t.Fatal("start succeeded without exporter")
	}
	var re *ResolutionError
	if !errors.As(err, &re) {
		t.Fatalf("error type %T", err)
	}
	if b.State() != Installed {
		t.Fatalf("state = %v, want INSTALLED", b.State())
	}
}

func TestOptionalImportLeftUnwired(t *testing.T) {
	fw := NewFramework()
	imp := manifest.New("importer", manifest.MustParseVersion("1.0"))
	imp.Imports = []manifest.PackageImport{{Name: "maybe.pkg", Range: manifest.AnyVersion, Optional: true}}
	b, _ := fw.Install(Definition{Manifest: imp})
	if err := b.Start(); err != nil {
		t.Fatal(err)
	}
	if _, ok := b.WiredTo("maybe.pkg"); ok {
		t.Fatal("optional import wired to nothing?")
	}
}

func TestResolutionPrefersHighestVersion(t *testing.T) {
	fw := NewFramework()
	for _, v := range []string{"1.0", "1.5", "1.2"} {
		m := manifest.New("exp-"+v, manifest.MustParseVersion("1.0"))
		m.Exports = []manifest.PackageExport{{Name: "pkg", Version: manifest.MustParseVersion(v)}}
		if _, err := fw.Install(Definition{Manifest: m}); err != nil {
			t.Fatal(err)
		}
	}
	imp := manifest.New("importer", manifest.MustParseVersion("1.0"))
	imp.Imports = []manifest.PackageImport{{Name: "pkg", Range: manifest.AnyVersion}}
	b, _ := fw.Install(Definition{Manifest: imp})
	if err := fw.Resolve(b); err != nil {
		t.Fatal(err)
	}
	wired, _ := b.WiredTo("pkg")
	if wired.SymbolicName() != "exp-1.5" {
		t.Fatalf("wired to %s, want exp-1.5", wired.SymbolicName())
	}
}

func TestUninstallExporterUnresolvesImporter(t *testing.T) {
	fw := NewFramework()
	exp := manifest.New("exporter", manifest.MustParseVersion("1.0"))
	exp.Exports = []manifest.PackageExport{{Name: "pkg"}}
	expB, _ := fw.Install(Definition{Manifest: exp})
	imp := manifest.New("importer", manifest.MustParseVersion("1.0"))
	imp.Imports = []manifest.PackageImport{{Name: "pkg", Range: manifest.AnyVersion}}
	impB, _ := fw.Install(Definition{Manifest: imp})
	if err := fw.Resolve(impB); err != nil {
		t.Fatal(err)
	}
	var unresolvedSeen bool
	fw.AddBundleListener(BundleListenerFunc(func(ev BundleEvent) {
		if ev.Type == BundleUnresolved && ev.Bundle == impB {
			unresolvedSeen = true
		}
	}))
	if err := expB.Uninstall(); err != nil {
		t.Fatal(err)
	}
	if impB.State() != Installed {
		t.Fatalf("importer state = %v, want INSTALLED", impB.State())
	}
	if !unresolvedSeen {
		t.Fatal("no UNRESOLVED event for importer")
	}
}

func TestUpdateRestartsActiveBundle(t *testing.T) {
	fw := NewFramework()
	act1 := &testActivator{}
	b, _ := fw.Install(defWithActivator("a", "1.0", act1))
	if err := b.Start(); err != nil {
		t.Fatal(err)
	}
	act2 := &testActivator{}
	if err := b.Update(defWithActivator("a", "1.1", act2)); err != nil {
		t.Fatal(err)
	}
	if act1.stopped != 1 {
		t.Fatal("old activator not stopped on update")
	}
	if act2.started != 1 {
		t.Fatal("new activator not started on update")
	}
	if b.Version() != manifest.MustParseVersion("1.1") {
		t.Fatalf("version after update = %v", b.Version())
	}
	if b.State() != Active {
		t.Fatalf("state after update = %v", b.State())
	}
}

func TestUpdateInstalledBundleStaysInstalled(t *testing.T) {
	fw := NewFramework()
	b, _ := fw.Install(def("a", "1.0"))
	if err := b.Update(def("a", "1.1")); err != nil {
		t.Fatal(err)
	}
	if b.State() != Installed {
		t.Fatalf("state = %v", b.State())
	}
}

func TestShutdownStopsAllAndBlocksInstall(t *testing.T) {
	fw := NewFramework()
	acts := make([]*testActivator, 3)
	for i := range acts {
		acts[i] = &testActivator{}
		b, err := fw.Install(defWithActivator(fmt.Sprintf("b%d", i), "1.0", acts[i]))
		if err != nil {
			t.Fatal(err)
		}
		if err := b.Start(); err != nil {
			t.Fatal(err)
		}
	}
	if err := fw.Shutdown(); err != nil {
		t.Fatal(err)
	}
	for i, a := range acts {
		if a.stopped != 1 {
			t.Fatalf("activator %d not stopped", i)
		}
	}
	if _, err := fw.Install(def("late", "1.0")); !errors.Is(err, ErrFrameworkStopped) {
		t.Fatalf("install after shutdown: %v", err)
	}
}

func TestBundleByName(t *testing.T) {
	fw := NewFramework()
	if fw.BundleByName("a") != nil {
		t.Fatal("phantom bundle")
	}
	if _, err := fw.Install(def("a", "1.0")); err != nil {
		t.Fatal(err)
	}
	b2, _ := fw.Install(def("a", "2.0"))
	if got := fw.BundleByName("a"); got != b2 {
		t.Fatalf("BundleByName picked %v, want highest version", got)
	}
}

func TestContextInvalidAfterStop(t *testing.T) {
	fw := NewFramework()
	var ctx *Context
	act := &testActivator{onStart: func(c *Context) error { ctx = c; return nil }}
	b, _ := fw.Install(defWithActivator("a", "1.0", act))
	if err := b.Start(); err != nil {
		t.Fatal(err)
	}
	if err := b.Stop(); err != nil {
		t.Fatal(err)
	}
	if _, err := ctx.RegisterService([]string{"x"}, struct{}{}, nil); err == nil {
		t.Fatal("stale context registered a service")
	}
}

func TestResourceLookup(t *testing.T) {
	d := def("a", "1.0")
	d.Resources = map[string]string{"OSGI-INF/c.xml": "<xml/>"}
	fw := NewFramework()
	b, _ := fw.Install(d)
	if got, ok := b.Resource("OSGI-INF/c.xml"); !ok || got != "<xml/>" {
		t.Fatalf("Resource = %q, %v", got, ok)
	}
	if _, ok := b.Resource("nope"); ok {
		t.Fatal("phantom resource")
	}
}

func TestStateStrings(t *testing.T) {
	for _, s := range []State{Installed, Resolved, Starting, Active, Stopping, Uninstalled} {
		if s.String() == "" || s.String()[0] == 'S' && s != Starting && s != Stopping {
			// just exercise; detailed text checked below
			_ = s
		}
	}
	if Installed.String() != "INSTALLED" || Active.String() != "ACTIVE" {
		t.Fatal("state strings wrong")
	}
	if State(42).String() != "State(42)" {
		t.Fatal("unknown state string")
	}
}

func mustRange(s string) manifest.Range {
	r, err := manifest.ParseRange(s)
	if err != nil {
		panic(err)
	}
	return r
}
