package osgi

import (
	"errors"
	"testing"

	"repro/internal/ldap"
	"repro/internal/manifest"
)

type dummyService struct{ name string }

func activeBundle(t *testing.T, fw *Framework, name string) (*Bundle, *Context) {
	t.Helper()
	var ctx *Context
	act := &testActivator{onStart: func(c *Context) error { ctx = c; return nil }}
	b, err := fw.Install(defWithActivator(name, "1.0", act))
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Start(); err != nil {
		t.Fatal(err)
	}
	return b, ctx
}

func TestRegisterAndGetService(t *testing.T) {
	fw := NewFramework()
	_, ctx := activeBundle(t, fw, "provider")
	svc := &dummyService{name: "one"}
	reg, err := ctx.RegisterService([]string{"demo.Service"}, svc, ldap.Properties{"flavour": "vanilla"})
	if err != nil {
		t.Fatal(err)
	}
	ref := ctx.ServiceReference("demo.Service")
	if ref == nil {
		t.Fatal("no reference found")
	}
	if got := ctx.Service(ref); got != svc {
		t.Fatalf("Service = %v", got)
	}
	if got := ref.Property("flavour"); got != "vanilla" {
		t.Fatalf("Property = %v", got)
	}
	if got := ref.Property("FLAVOUR"); got != "vanilla" {
		t.Fatalf("case-insensitive Property = %v", got)
	}
	if ref.ID() <= 0 {
		t.Fatalf("service id = %d", ref.ID())
	}
	if reg.Reference() != ref {
		t.Fatal("registration reference mismatch")
	}
}

func TestRegisterValidation(t *testing.T) {
	fw := NewFramework()
	_, ctx := activeBundle(t, fw, "p")
	if _, err := ctx.RegisterService(nil, &dummyService{}, nil); err == nil {
		t.Fatal("no interfaces accepted")
	}
	if _, err := ctx.RegisterService([]string{"i"}, nil, nil); err == nil {
		t.Fatal("nil object accepted")
	}
}

func TestRegisterFromNonActiveBundleRejected(t *testing.T) {
	fw := NewFramework()
	b, _ := fw.Install(def("p", "1.0"))
	_ = b
	// Direct framework registration on behalf of an installed bundle.
	if _, err := fw.registerService(b, []string{"i"}, &dummyService{}, nil); err == nil {
		t.Fatal("installed (not started) bundle registered a service")
	}
}

func TestServiceFilterQuery(t *testing.T) {
	fw := NewFramework()
	_, ctx := activeBundle(t, fw, "p")
	if _, err := ctx.RegisterService([]string{"i"}, &dummyService{"a"}, ldap.Properties{"grade": 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := ctx.RegisterService([]string{"i"}, &dummyService{"b"}, ldap.Properties{"grade": 2}); err != nil {
		t.Fatal(err)
	}
	refs := ctx.ServiceReferences("i", ldap.MustParse("(grade>=2)"))
	if len(refs) != 1 {
		t.Fatalf("filtered refs = %d, want 1", len(refs))
	}
	if svc := ctx.Service(refs[0]).(*dummyService); svc.name != "b" {
		t.Fatalf("got %q", svc.name)
	}
	// objectClass is queryable, spec-style.
	refs = ctx.ServiceReferences("", ldap.MustParse("(objectClass=i)"))
	if len(refs) != 2 {
		t.Fatalf("objectClass query = %d, want 2", len(refs))
	}
}

func TestServiceRankingOrder(t *testing.T) {
	fw := NewFramework()
	_, ctx := activeBundle(t, fw, "p")
	if _, err := ctx.RegisterService([]string{"i"}, &dummyService{"low"}, ldap.Properties{PropServiceRanking: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := ctx.RegisterService([]string{"i"}, &dummyService{"high"}, ldap.Properties{PropServiceRanking: 9}); err != nil {
		t.Fatal(err)
	}
	if _, err := ctx.RegisterService([]string{"i"}, &dummyService{"default"}, nil); err != nil {
		t.Fatal(err)
	}
	refs := ctx.ServiceReferences("i", nil)
	if len(refs) != 3 {
		t.Fatalf("refs = %d", len(refs))
	}
	first := ctx.Service(refs[0]).(*dummyService)
	if first.name != "high" {
		t.Fatalf("best ref = %q, want high", first.name)
	}
	// Equal ranking ties break to oldest (lowest id).
	last := ctx.Service(refs[2]).(*dummyService)
	if last.name != "default" {
		t.Fatalf("worst ref = %q, want default (ranking 0)", last.name)
	}
}

func TestUnregister(t *testing.T) {
	fw := NewFramework()
	_, ctx := activeBundle(t, fw, "p")
	reg, _ := ctx.RegisterService([]string{"i"}, &dummyService{}, nil)
	if err := reg.Unregister(); err != nil {
		t.Fatal(err)
	}
	if ref := ctx.ServiceReference("i"); ref != nil {
		t.Fatal("unregistered service still discoverable")
	}
	if got := ctx.Service(reg.Reference()); got != nil {
		t.Fatal("unregistered service still dereferences")
	}
	if err := reg.Unregister(); !errors.Is(err, ErrServiceUnregistered) {
		t.Fatalf("double unregister err = %v", err)
	}
}

func TestServiceEvents(t *testing.T) {
	fw := NewFramework()
	_, ctx := activeBundle(t, fw, "p")
	var events []ServiceEventType
	ctx.AddServiceListener(ServiceListenerFunc(func(ev ServiceEvent) {
		events = append(events, ev.Type)
	}), nil)
	reg, _ := ctx.RegisterService([]string{"i"}, &dummyService{}, nil)
	if err := reg.SetProperties(ldap.Properties{"x": 1}); err != nil {
		t.Fatal(err)
	}
	if err := reg.Unregister(); err != nil {
		t.Fatal(err)
	}
	want := []ServiceEventType{ServiceRegistered, ServiceModified, ServiceUnregistering}
	if len(events) != len(want) {
		t.Fatalf("events = %v", events)
	}
	for i := range want {
		if events[i] != want[i] {
			t.Fatalf("events = %v, want %v", events, want)
		}
	}
}

func TestServiceListenerFilter(t *testing.T) {
	fw := NewFramework()
	_, ctx := activeBundle(t, fw, "p")
	var hits int
	ctx.AddServiceListener(ServiceListenerFunc(func(ev ServiceEvent) {
		hits++
	}), ldap.MustParse("(kind=rt)"))
	if _, err := ctx.RegisterService([]string{"i"}, &dummyService{}, ldap.Properties{"kind": "rt"}); err != nil {
		t.Fatal(err)
	}
	if _, err := ctx.RegisterService([]string{"i"}, &dummyService{}, ldap.Properties{"kind": "other"}); err != nil {
		t.Fatal(err)
	}
	if hits != 1 {
		t.Fatalf("filtered listener hits = %d, want 1", hits)
	}
}

func TestRemoveServiceListener(t *testing.T) {
	fw := NewFramework()
	_, ctx := activeBundle(t, fw, "p")
	var hits int
	remove := ctx.AddServiceListener(ServiceListenerFunc(func(ev ServiceEvent) { hits++ }), nil)
	if _, err := ctx.RegisterService([]string{"i"}, &dummyService{}, nil); err != nil {
		t.Fatal(err)
	}
	remove()
	remove() // second removal is harmless
	if _, err := ctx.RegisterService([]string{"j"}, &dummyService{}, nil); err != nil {
		t.Fatal(err)
	}
	if hits != 1 {
		t.Fatalf("hits = %d, want 1", hits)
	}
}

func TestBundleStopUnregistersItsServices(t *testing.T) {
	fw := NewFramework()
	b, ctx := activeBundle(t, fw, "p")
	if _, err := ctx.RegisterService([]string{"i"}, &dummyService{}, nil); err != nil {
		t.Fatal(err)
	}
	if err := b.Stop(); err != nil {
		t.Fatal(err)
	}
	if refs := fw.ServiceReferences("i", nil); len(refs) != 0 {
		t.Fatalf("services survive bundle stop: %d", len(refs))
	}
}

func TestSetPropertiesPreservesSystemKeys(t *testing.T) {
	fw := NewFramework()
	_, ctx := activeBundle(t, fw, "p")
	reg, _ := ctx.RegisterService([]string{"i"}, &dummyService{}, ldap.Properties{"a": 1})
	id := reg.Reference().ID()
	if err := reg.SetProperties(ldap.Properties{"b": 2}); err != nil {
		t.Fatal(err)
	}
	ref := reg.Reference()
	if ref.Property("a") != nil {
		t.Fatal("old custom property survived SetProperties")
	}
	if got := ref.Property("b"); got != 2 {
		t.Fatalf("b = %v", got)
	}
	if got := ref.Property(PropServiceID); got != id {
		t.Fatalf("service.id changed: %v", got)
	}
	ifaces := ref.Interfaces()
	if len(ifaces) != 1 || ifaces[0] != "i" {
		t.Fatalf("interfaces = %v", ifaces)
	}
}

func TestFrameworkLevelService(t *testing.T) {
	fw := NewFramework()
	reg, err := fw.RegisterService([]string{"sys.Service"}, &dummyService{"sys"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if reg.Reference().Bundle() != nil {
		t.Fatal("framework service has owning bundle")
	}
	refs := fw.ServiceReferences("sys.Service", nil)
	if len(refs) != 1 {
		t.Fatalf("refs = %d", len(refs))
	}
	if fw.Service(refs[0]).(*dummyService).name != "sys" {
		t.Fatal("wrong service")
	}
}

func TestServiceReferencePropertiesCopy(t *testing.T) {
	fw := NewFramework()
	_, ctx := activeBundle(t, fw, "p")
	reg, _ := ctx.RegisterService([]string{"i"}, &dummyService{}, ldap.Properties{"a": 1})
	props := reg.Reference().Properties()
	props["a"] = 99
	if got := reg.Reference().Property("a"); got != 1 {
		t.Fatalf("Properties() not a copy: %v", got)
	}
}

func TestVersionTypeExposed(t *testing.T) {
	fw := NewFramework()
	b, _ := fw.Install(def("x", "3.4.5"))
	if b.Version() != manifest.MustParseVersion("3.4.5") {
		t.Fatalf("Version = %v", b.Version())
	}
	if b.String() == "" {
		t.Fatal("empty String")
	}
}
