package osgi

import (
	"sort"
	"sync"

	"repro/internal/ldap"
)

// ServiceTracker watches the registry for services matching an interface
// and optional filter, maintaining a live set and invoking callbacks as
// matches come and go — the org.osgi.util.tracker.ServiceTracker
// analogue that adaptation managers and the DRCR's resolving-service
// discovery build on.
type ServiceTracker struct {
	fw     *Framework
	iface  string
	filter *ldap.Filter

	mu      sync.Mutex
	tracked map[int64]*ServiceReference
	onAdd   func(ref *ServiceReference, svc any)
	onRem   func(ref *ServiceReference, svc any)
	remove  func()
	open    bool
}

// TrackerOptions configures a ServiceTracker.
type TrackerOptions struct {
	// Interface restricts tracking to services exposing this interface;
	// empty tracks everything the filter matches.
	Interface string
	// Filter further restricts matches; nil matches all.
	Filter *ldap.Filter
	// OnAdd fires when a matching service appears (and once for each
	// pre-existing match when the tracker opens).
	OnAdd func(ref *ServiceReference, svc any)
	// OnRemove fires when a tracked service disappears or stops matching.
	OnRemove func(ref *ServiceReference, svc any)
}

// NewServiceTracker creates a closed tracker; call Open.
func NewServiceTracker(fw *Framework, opts TrackerOptions) *ServiceTracker {
	return &ServiceTracker{
		fw:      fw,
		iface:   opts.Interface,
		filter:  opts.Filter,
		tracked: map[int64]*ServiceReference{},
		onAdd:   opts.OnAdd,
		onRem:   opts.OnRemove,
	}
}

// Open starts tracking: existing matches are reported through OnAdd, then
// registry events keep the set current.
func (t *ServiceTracker) Open() {
	t.mu.Lock()
	if t.open {
		t.mu.Unlock()
		return
	}
	t.open = true
	t.mu.Unlock()
	t.remove = t.fw.AddServiceListener(ServiceListenerFunc(t.serviceChanged), nil)
	for _, ref := range t.fw.getServiceReferences(t.iface, t.filter) {
		t.add(ref)
	}
}

// Close stops tracking; OnRemove fires for every tracked service.
func (t *ServiceTracker) Close() {
	t.mu.Lock()
	if !t.open {
		t.mu.Unlock()
		return
	}
	t.open = false
	refs := make([]*ServiceReference, 0, len(t.tracked))
	for _, ref := range t.tracked {
		refs = append(refs, ref)
	}
	t.tracked = map[int64]*ServiceReference{}
	t.mu.Unlock()
	if t.remove != nil {
		t.remove()
		t.remove = nil
	}
	sort.Slice(refs, func(i, j int) bool { return refs[i].id < refs[j].id })
	if t.onRem != nil {
		for _, ref := range refs {
			t.onRem(ref, t.fw.getService(ref))
		}
	}
}

// Size reports the number of currently tracked services.
func (t *ServiceTracker) Size() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.tracked)
}

// References returns the tracked references, best (highest ranking,
// oldest) first.
func (t *ServiceTracker) References() []*ServiceReference {
	t.mu.Lock()
	refs := make([]*ServiceReference, 0, len(t.tracked))
	for _, ref := range t.tracked {
		refs = append(refs, ref)
	}
	t.mu.Unlock()
	sort.Slice(refs, func(i, j int) bool {
		ri, rj := rankingOf(refs[i]), rankingOf(refs[j])
		if ri != rj {
			return ri > rj
		}
		return refs[i].id < refs[j].id
	})
	return refs
}

// Services returns the tracked service objects, best first.
func (t *ServiceTracker) Services() []any {
	refs := t.References()
	out := make([]any, 0, len(refs))
	for _, ref := range refs {
		if svc := t.fw.getService(ref); svc != nil {
			out = append(out, svc)
		}
	}
	return out
}

// Best returns the best tracked service, or nil.
func (t *ServiceTracker) Best() any {
	svcs := t.Services()
	if len(svcs) == 0 {
		return nil
	}
	return svcs[0]
}

func (t *ServiceTracker) matches(ref *ServiceReference) bool {
	if t.iface != "" && !contains(ref.interfaces, t.iface) {
		return false
	}
	return t.filter.Matches(ref.props)
}

func (t *ServiceTracker) serviceChanged(ev ServiceEvent) {
	t.mu.Lock()
	open := t.open
	t.mu.Unlock()
	if !open {
		return
	}
	switch ev.Type {
	case ServiceRegistered:
		if t.matches(ev.Reference) {
			t.add(ev.Reference)
		}
	case ServiceModified:
		// Property changes can move a service in or out of scope.
		t.mu.Lock()
		_, had := t.tracked[ev.Reference.id]
		t.mu.Unlock()
		match := t.matches(ev.Reference)
		switch {
		case match && !had:
			t.add(ev.Reference)
		case !match && had:
			t.drop(ev.Reference)
		}
	case ServiceUnregistering:
		t.drop(ev.Reference)
	}
}

func (t *ServiceTracker) add(ref *ServiceReference) {
	t.mu.Lock()
	if _, dup := t.tracked[ref.id]; dup {
		t.mu.Unlock()
		return
	}
	t.tracked[ref.id] = ref
	t.mu.Unlock()
	if t.onAdd != nil {
		t.onAdd(ref, t.fw.getService(ref))
	}
}

func (t *ServiceTracker) drop(ref *ServiceReference) {
	t.mu.Lock()
	if _, had := t.tracked[ref.id]; !had {
		t.mu.Unlock()
		return
	}
	delete(t.tracked, ref.id)
	t.mu.Unlock()
	if t.onRem != nil {
		t.onRem(ref, t.fw.getService(ref))
	}
}
