// Package osgi implements the OSGi-like framework substrate the DRCom
// model runs on: bundle lifecycle, manifest-driven package wiring, a
// service registry with RFC 1960 filters, and synchronous event delivery.
//
// It is deliberately a *framework model*, not a class loader: bundle
// "code" is supplied as Go values (activators, resources) rather than
// loaded from JARs, which is the only part of OSGi that cannot be
// reproduced meaningfully in Go. Everything DRCR interacts with —
// lifecycle states and events, service registration and discovery,
// declarative component descriptors shipped as bundle resources — has the
// semantics of the OSGi 4.x core specification.
package osgi

import "fmt"

// BundleEventType enumerates bundle lifecycle event kinds.
type BundleEventType int

// Bundle event kinds (OSGi core spec §4.7).
const (
	BundleInstalled BundleEventType = iota + 1
	BundleResolved
	BundleStarting
	BundleStarted
	BundleStopping
	BundleStopped
	BundleUpdated
	BundleUnresolved
	BundleUninstalled
)

func (t BundleEventType) String() string {
	switch t {
	case BundleInstalled:
		return "INSTALLED"
	case BundleResolved:
		return "RESOLVED"
	case BundleStarting:
		return "STARTING"
	case BundleStarted:
		return "STARTED"
	case BundleStopping:
		return "STOPPING"
	case BundleStopped:
		return "STOPPED"
	case BundleUpdated:
		return "UPDATED"
	case BundleUnresolved:
		return "UNRESOLVED"
	case BundleUninstalled:
		return "UNINSTALLED"
	default:
		return fmt.Sprintf("BundleEventType(%d)", int(t))
	}
}

// BundleEvent reports a bundle lifecycle transition.
type BundleEvent struct {
	Type   BundleEventType
	Bundle *Bundle
}

// BundleListener receives bundle lifecycle events synchronously.
type BundleListener interface {
	BundleChanged(ev BundleEvent)
}

// BundleListenerFunc adapts a function to BundleListener.
type BundleListenerFunc func(ev BundleEvent)

// BundleChanged implements BundleListener.
func (f BundleListenerFunc) BundleChanged(ev BundleEvent) { f(ev) }

// ServiceEventType enumerates service registry event kinds.
type ServiceEventType int

// Service event kinds.
const (
	ServiceRegistered ServiceEventType = iota + 1
	ServiceModified
	ServiceUnregistering
)

func (t ServiceEventType) String() string {
	switch t {
	case ServiceRegistered:
		return "REGISTERED"
	case ServiceModified:
		return "MODIFIED"
	case ServiceUnregistering:
		return "UNREGISTERING"
	default:
		return fmt.Sprintf("ServiceEventType(%d)", int(t))
	}
}

// ServiceEvent reports a service registry change.
type ServiceEvent struct {
	Type      ServiceEventType
	Reference *ServiceReference
}

// ServiceListener receives service events synchronously.
type ServiceListener interface {
	ServiceChanged(ev ServiceEvent)
}

// ServiceListenerFunc adapts a function to ServiceListener.
type ServiceListenerFunc func(ev ServiceEvent)

// ServiceChanged implements ServiceListener.
func (f ServiceListenerFunc) ServiceChanged(ev ServiceEvent) { f(ev) }

// FrameworkEvent reports a framework-level condition (errors raised by
// activators, resolution warnings).
type FrameworkEvent struct {
	Bundle *Bundle
	Err    error
	Info   string
}

// FrameworkListener receives framework events synchronously.
type FrameworkListener interface {
	FrameworkEvent(ev FrameworkEvent)
}

// FrameworkListenerFunc adapts a function to FrameworkListener.
type FrameworkListenerFunc func(ev FrameworkEvent)

// FrameworkEvent implements FrameworkListener.
func (f FrameworkListenerFunc) FrameworkEvent(ev FrameworkEvent) { f(ev) }
