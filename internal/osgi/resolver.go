package osgi

import (
	"fmt"
	"strings"

	"repro/internal/manifest"
)

// ResolutionError reports why a bundle could not be resolved.
type ResolutionError struct {
	Bundle  *Bundle
	Missing []string // unsatisfied mandatory import clauses, human-readable
}

func (e *ResolutionError) Error() string {
	return fmt.Sprintf("osgi: bundle %s unresolved: missing %s",
		e.Bundle.SymbolicName(), strings.Join(e.Missing, ", "))
}

// Resolve attempts to wire the bundle's package imports against the
// exports of other installed (non-uninstalled) bundles, moving it from
// Installed to Resolved. Resolving an already-resolved bundle is a no-op.
func (fw *Framework) Resolve(b *Bundle) error {
	fw.mu.Lock()
	if b.state != Installed {
		state := b.state
		fw.mu.Unlock()
		if state == Resolved || state == Starting || state == Active || state == Stopping {
			return nil
		}
		return fmt.Errorf("osgi: cannot resolve bundle in state %v", state)
	}
	err := fw.resolveLocked(b)
	fw.mu.Unlock()
	if err != nil {
		return err
	}
	fw.dispatchBundleEvent(BundleEvent{Type: BundleResolved, Bundle: b})
	return nil
}

// resolveLocked wires imports while fw.mu is held. On success the bundle
// transitions to Resolved; on failure its state and wires are unchanged.
func (fw *Framework) resolveLocked(b *Bundle) error {
	m := b.def.Manifest
	wires := map[string]*Bundle{}
	var missing []string
	for _, imp := range m.Imports {
		exporter := fw.findExporterLocked(b, imp)
		if exporter == nil {
			if imp.Optional {
				continue
			}
			missing = append(missing, fmt.Sprintf("%s %s", imp.Name, imp.Range))
			continue
		}
		wires[imp.Name] = exporter
	}
	if len(missing) > 0 {
		return &ResolutionError{Bundle: b, Missing: missing}
	}
	b.wires = wires
	b.state = Resolved
	return nil
}

// findExporterLocked picks the best exporter for the import clause:
// highest in-range export version wins; ties break to the lowest bundle
// id (oldest installed), matching Equinox behaviour.
func (fw *Framework) findExporterLocked(importer *Bundle, imp manifest.PackageImport) *Bundle {
	var best *Bundle
	var bestVersion manifest.Version
	for _, cand := range fw.bundles {
		if cand.state == Uninstalled || cand.id == importer.id {
			continue
		}
		mf := cand.def.Manifest
		if mf == nil {
			continue
		}
		for _, exp := range mf.Exports {
			if exp.Name != imp.Name || !imp.Range.Contains(exp.Version) {
				continue
			}
			switch c := exp.Version.Compare(bestVersion); {
			case best == nil || c > 0:
				best, bestVersion = cand, exp.Version
			case c == 0 && cand.id < best.id:
				best = cand
			}
		}
	}
	return best
}
