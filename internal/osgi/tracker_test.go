package osgi

import (
	"testing"

	"repro/internal/ldap"
)

func TestTrackerSeesPreexistingServices(t *testing.T) {
	fw := NewFramework()
	if _, err := fw.RegisterService([]string{"i"}, &dummyService{"pre"}, nil); err != nil {
		t.Fatal(err)
	}
	var added []string
	tr := NewServiceTracker(fw, TrackerOptions{
		Interface: "i",
		OnAdd:     func(ref *ServiceReference, svc any) { added = append(added, svc.(*dummyService).name) },
	})
	tr.Open()
	defer tr.Close()
	if len(added) != 1 || added[0] != "pre" {
		t.Fatalf("added = %v", added)
	}
	if tr.Size() != 1 {
		t.Fatalf("size = %d", tr.Size())
	}
}

func TestTrackerAddRemoveCallbacks(t *testing.T) {
	fw := NewFramework()
	var added, removed []string
	tr := NewServiceTracker(fw, TrackerOptions{
		Interface: "i",
		OnAdd:     func(ref *ServiceReference, svc any) { added = append(added, svc.(*dummyService).name) },
		OnRemove:  func(ref *ServiceReference, svc any) { removed = append(removed, ref.Property("nm").(string)) },
	})
	tr.Open()
	defer tr.Close()
	reg, err := fw.RegisterService([]string{"i"}, &dummyService{"a"}, ldap.Properties{"nm": "a"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fw.RegisterService([]string{"other"}, &dummyService{"x"}, nil); err != nil {
		t.Fatal(err)
	}
	if len(added) != 1 || tr.Size() != 1 {
		t.Fatalf("added = %v size = %d", added, tr.Size())
	}
	if err := reg.Unregister(); err != nil {
		t.Fatal(err)
	}
	if len(removed) != 1 || removed[0] != "a" {
		t.Fatalf("removed = %v", removed)
	}
	if tr.Size() != 0 {
		t.Fatalf("size = %d", tr.Size())
	}
}

func TestTrackerFilterAndModification(t *testing.T) {
	fw := NewFramework()
	tr := NewServiceTracker(fw, TrackerOptions{
		Interface: "i",
		Filter:    ldap.MustParse("(grade>=5)"),
	})
	tr.Open()
	defer tr.Close()
	reg, err := fw.RegisterService([]string{"i"}, &dummyService{}, ldap.Properties{"grade": 3})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Size() != 0 {
		t.Fatal("low-grade service tracked")
	}
	// Property change moves it into scope…
	if err := reg.SetProperties(ldap.Properties{"grade": 7}); err != nil {
		t.Fatal(err)
	}
	if tr.Size() != 1 {
		t.Fatal("upgraded service not tracked")
	}
	// …and out again.
	if err := reg.SetProperties(ldap.Properties{"grade": 1}); err != nil {
		t.Fatal(err)
	}
	if tr.Size() != 0 {
		t.Fatal("downgraded service still tracked")
	}
}

func TestTrackerBestByRanking(t *testing.T) {
	fw := NewFramework()
	tr := NewServiceTracker(fw, TrackerOptions{Interface: "i"})
	tr.Open()
	defer tr.Close()
	if tr.Best() != nil {
		t.Fatal("phantom best")
	}
	if _, err := fw.RegisterService([]string{"i"}, &dummyService{"low"}, ldap.Properties{PropServiceRanking: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := fw.RegisterService([]string{"i"}, &dummyService{"high"}, ldap.Properties{PropServiceRanking: 5}); err != nil {
		t.Fatal(err)
	}
	if got := tr.Best().(*dummyService).name; got != "high" {
		t.Fatalf("best = %q", got)
	}
	if got := len(tr.Services()); got != 2 {
		t.Fatalf("services = %d", got)
	}
	refs := tr.References()
	if len(refs) != 2 || rankingOf(refs[0]) < rankingOf(refs[1]) {
		t.Fatalf("references out of order")
	}
}

func TestTrackerCloseReportsRemovals(t *testing.T) {
	fw := NewFramework()
	var removed int
	tr := NewServiceTracker(fw, TrackerOptions{
		Interface: "i",
		OnRemove:  func(*ServiceReference, any) { removed++ },
	})
	tr.Open()
	if _, err := fw.RegisterService([]string{"i"}, &dummyService{}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := fw.RegisterService([]string{"i"}, &dummyService{}, nil); err != nil {
		t.Fatal(err)
	}
	tr.Close()
	tr.Close() // idempotent
	if removed != 2 {
		t.Fatalf("removed = %d", removed)
	}
	// After close, registry churn is ignored.
	if _, err := fw.RegisterService([]string{"i"}, &dummyService{}, nil); err != nil {
		t.Fatal(err)
	}
	if tr.Size() != 0 {
		t.Fatal("closed tracker tracked a service")
	}
	// Reopen works.
	tr.Open()
	if tr.Size() != 3 {
		t.Fatalf("reopened size = %d", tr.Size())
	}
	tr.Close()
}
