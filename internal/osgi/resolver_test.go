package osgi

import (
	"strings"
	"testing"

	"repro/internal/manifest"
)

func exporter(t *testing.T, fw *Framework, symbolic, pkg, version string) *Bundle {
	t.Helper()
	m := manifest.New(symbolic, manifest.MustParseVersion("1.0"))
	m.Exports = []manifest.PackageExport{{Name: pkg, Version: manifest.MustParseVersion(version)}}
	b, err := fw.Install(Definition{Manifest: m})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func importer(t *testing.T, fw *Framework, symbolic, pkg, rng string) *Bundle {
	t.Helper()
	m := manifest.New(symbolic, manifest.MustParseVersion("1.0"))
	m.Imports = []manifest.PackageImport{{Name: pkg, Range: mustRange(rng)}}
	b, err := fw.Install(Definition{Manifest: m})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestResolverHonoursVersionRange(t *testing.T) {
	fw := NewFramework()
	exporter(t, fw, "old", "pkg", "1.0")
	exporter(t, fw, "new", "pkg", "3.0")
	imp := importer(t, fw, "imp", "pkg", "[1.0,2.0)")
	if err := fw.Resolve(imp); err != nil {
		t.Fatal(err)
	}
	wired, _ := imp.WiredTo("pkg")
	if wired.SymbolicName() != "old" {
		t.Fatalf("wired to %s; 3.0 is outside [1.0,2.0)", wired.SymbolicName())
	}
}

func TestResolverTieBreaksToOldestBundle(t *testing.T) {
	fw := NewFramework()
	first := exporter(t, fw, "first", "pkg", "1.0")
	exporter(t, fw, "second", "pkg", "1.0")
	imp := importer(t, fw, "imp", "pkg", "")
	if err := fw.Resolve(imp); err != nil {
		t.Fatal(err)
	}
	wired, _ := imp.WiredTo("pkg")
	if wired != first {
		t.Fatalf("wired to %s, want the oldest bundle", wired.SymbolicName())
	}
}

func TestResolverIgnoresSelfExport(t *testing.T) {
	fw := NewFramework()
	m := manifest.New("selfish", manifest.MustParseVersion("1.0"))
	m.Exports = []manifest.PackageExport{{Name: "pkg"}}
	m.Imports = []manifest.PackageImport{{Name: "pkg", Range: manifest.AnyVersion}}
	b, err := fw.Install(Definition{Manifest: m})
	if err != nil {
		t.Fatal(err)
	}
	if err := fw.Resolve(b); err == nil {
		t.Fatal("bundle satisfied its own import")
	}
}

func TestResolveErrorNamesMissingImports(t *testing.T) {
	fw := NewFramework()
	m := manifest.New("imp", manifest.MustParseVersion("1.0"))
	m.Imports = []manifest.PackageImport{
		{Name: "gone.a", Range: manifest.AnyVersion},
		{Name: "gone.b", Range: mustRange("[2.0,3.0)")},
	}
	b, err := fw.Install(Definition{Manifest: m})
	if err != nil {
		t.Fatal(err)
	}
	err = fw.Resolve(b)
	if err == nil {
		t.Fatal("resolved with missing imports")
	}
	for _, want := range []string{"gone.a", "gone.b", "[2.0.0,3.0.0)"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err, want)
		}
	}
}

func TestResolveIdempotentOnResolved(t *testing.T) {
	fw := NewFramework()
	b, err := fw.Install(def("plain", "1.0"))
	if err != nil {
		t.Fatal(err)
	}
	if err := fw.Resolve(b); err != nil {
		t.Fatal(err)
	}
	if b.State() != Resolved {
		t.Fatalf("state = %v", b.State())
	}
	if err := fw.Resolve(b); err != nil {
		t.Fatal(err)
	}
	// Resolving an uninstalled bundle fails.
	if err := b.Uninstall(); err != nil {
		t.Fatal(err)
	}
	if err := fw.Resolve(b); err == nil {
		t.Fatal("resolved an uninstalled bundle")
	}
}

func TestUpdateClearsWires(t *testing.T) {
	fw := NewFramework()
	exporter(t, fw, "exp", "pkg", "1.0")
	imp := importer(t, fw, "imp", "pkg", "")
	if err := fw.Resolve(imp); err != nil {
		t.Fatal(err)
	}
	if _, ok := imp.WiredTo("pkg"); !ok {
		t.Fatal("not wired")
	}
	// Update to a definition without imports: old wires must vanish.
	if err := imp.Update(def("imp", "2.0")); err != nil {
		t.Fatal(err)
	}
	if _, ok := imp.WiredTo("pkg"); ok {
		t.Fatal("stale wire survived update")
	}
	if imp.State() != Installed {
		t.Fatalf("state after update = %v", imp.State())
	}
}

func TestListenerRemovalDuringDispatchSafe(t *testing.T) {
	fw := NewFramework()
	var calls int
	var removeSelf func()
	removeSelf = fw.AddBundleListener(BundleListenerFunc(func(ev BundleEvent) {
		calls++
		removeSelf() // listeners may unsubscribe themselves mid-dispatch
	}))
	if _, err := fw.Install(def("a", "1.0")); err != nil {
		t.Fatal(err)
	}
	if _, err := fw.Install(def("b", "1.0")); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("calls = %d, want 1 (self-removal honoured)", calls)
	}
}

func TestListenerInstallDuringDispatchSafe(t *testing.T) {
	fw := NewFramework()
	installed := 0
	fw.AddBundleListener(BundleListenerFunc(func(ev BundleEvent) {
		installed++
		if ev.Bundle.SymbolicName() == "trigger" {
			// Listeners may install further bundles re-entrantly.
			if _, err := fw.Install(def("nested", "1.0")); err != nil {
				t.Errorf("nested install: %v", err)
			}
		}
	}))
	if _, err := fw.Install(def("trigger", "1.0")); err != nil {
		t.Fatal(err)
	}
	if fw.BundleByName("nested") == nil {
		t.Fatal("nested bundle missing")
	}
	if installed != 2 {
		t.Fatalf("events = %d", installed)
	}
}
