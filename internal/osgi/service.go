package osgi

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/ldap"
)

// Standard service property keys (OSGi core spec §5.2.5).
const (
	PropObjectClass    = "objectClass"
	PropServiceID      = "service.id"
	PropServiceRanking = "service.ranking"
)

// ErrServiceUnregistered is returned for operations on a dead registration.
var ErrServiceUnregistered = errors.New("osgi: service already unregistered")

// ServiceRegistration is the registrar-side handle to a published service.
type ServiceRegistration struct {
	ref *ServiceReference
}

// ServiceReference is the consumer-side handle to a published service.
type ServiceReference struct {
	id           int64
	interfaces   []string
	props        ldap.Properties
	object       any
	bundle       *Bundle
	fw           *Framework
	unregistered bool
}

// ID returns the framework-assigned service.id.
func (r *ServiceReference) ID() int64 { return r.id }

// Interfaces returns the service's published interface names.
func (r *ServiceReference) Interfaces() []string {
	out := make([]string, len(r.interfaces))
	copy(out, r.interfaces)
	return out
}

// Bundle returns the registering bundle.
func (r *ServiceReference) Bundle() *Bundle { return r.bundle }

// Property returns a service property (case-insensitive key), or nil.
func (r *ServiceReference) Property(key string) any {
	r.fw.mu.Lock()
	defer r.fw.mu.Unlock()
	return lookupProp(r.props, key)
}

// Properties returns a copy of all service properties.
func (r *ServiceReference) Properties() ldap.Properties {
	r.fw.mu.Lock()
	defer r.fw.mu.Unlock()
	out := make(ldap.Properties, len(r.props))
	for k, v := range r.props {
		out[k] = v
	}
	return out
}

// Ranking returns service.ranking, defaulting to zero.
func (r *ServiceReference) Ranking() int {
	if v, ok := r.Property(PropServiceRanking).(int); ok {
		return v
	}
	return 0
}

func lookupProp(props ldap.Properties, key string) any {
	if v, ok := props[key]; ok {
		return v
	}
	for k, v := range props {
		if equalFold(k, key) {
			return v
		}
	}
	return nil
}

func equalFold(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		ca, cb := a[i], b[i]
		if 'A' <= ca && ca <= 'Z' {
			ca += 'a' - 'A'
		}
		if 'A' <= cb && cb <= 'Z' {
			cb += 'a' - 'A'
		}
		if ca != cb {
			return false
		}
	}
	return true
}

// Reference returns the consumer-side view of the registration.
func (sr *ServiceRegistration) Reference() *ServiceReference { return sr.ref }

// SetProperties replaces the service's custom properties (objectClass and
// service.id are preserved) and fires a ServiceModified event.
func (sr *ServiceRegistration) SetProperties(props ldap.Properties) error {
	fw := sr.ref.fw
	fw.mu.Lock()
	if sr.ref.unregistered {
		fw.mu.Unlock()
		return ErrServiceUnregistered
	}
	next := make(ldap.Properties, len(props)+2)
	for k, v := range props {
		next[k] = v
	}
	next[PropObjectClass] = sr.ref.interfaces
	next[PropServiceID] = sr.ref.id
	sr.ref.props = next
	fw.mu.Unlock()
	fw.dispatchServiceEvent(ServiceEvent{Type: ServiceModified, Reference: sr.ref})
	return nil
}

// Unregister withdraws the service. Listeners observe ServiceUnregistering
// before the reference becomes invalid.
func (sr *ServiceRegistration) Unregister() error {
	fw := sr.ref.fw
	fw.mu.Lock()
	if sr.ref.unregistered {
		fw.mu.Unlock()
		return ErrServiceUnregistered
	}
	fw.mu.Unlock()
	// Listeners see the service still live during UNREGISTERING, per spec.
	fw.dispatchServiceEvent(ServiceEvent{Type: ServiceUnregistering, Reference: sr.ref})
	fw.mu.Lock()
	sr.ref.unregistered = true
	delete(fw.services, sr.ref.id)
	fw.mu.Unlock()
	return nil
}

// registerService publishes object under the given interface names.
func (fw *Framework) registerService(b *Bundle, interfaces []string, object any, props ldap.Properties) (*ServiceRegistration, error) {
	if len(interfaces) == 0 {
		return nil, errors.New("osgi: service must declare at least one interface")
	}
	if object == nil {
		return nil, errors.New("osgi: nil service object")
	}
	fw.mu.Lock()
	if b != nil && (b.state != Active && b.state != Starting && b.state != Stopping) {
		fw.mu.Unlock()
		return nil, fmt.Errorf("osgi: bundle %s in state %v cannot register services", b.SymbolicName(), b.state)
	}
	id := fw.nextServiceID
	fw.nextServiceID++
	all := make(ldap.Properties, len(props)+2)
	for k, v := range props {
		all[k] = v
	}
	ifaces := make([]string, len(interfaces))
	copy(ifaces, interfaces)
	all[PropObjectClass] = ifaces
	all[PropServiceID] = id
	ref := &ServiceReference{
		id:         id,
		interfaces: ifaces,
		props:      all,
		object:     object,
		bundle:     b,
		fw:         fw,
	}
	fw.services[id] = ref
	fw.mu.Unlock()
	fw.dispatchServiceEvent(ServiceEvent{Type: ServiceRegistered, Reference: ref})
	return &ServiceRegistration{ref: ref}, nil
}

// getServiceReferences returns live references exposing iface (empty
// string = any) whose properties satisfy filter, best-first: higher
// service.ranking wins, ties broken by lower service.id (older service).
func (fw *Framework) getServiceReferences(iface string, filter *ldap.Filter) []*ServiceReference {
	fw.mu.Lock()
	var refs []*ServiceReference
	for _, ref := range fw.services {
		if ref.unregistered {
			continue
		}
		if iface != "" && !contains(ref.interfaces, iface) {
			continue
		}
		if !filter.Matches(ref.props) {
			continue
		}
		refs = append(refs, ref)
	}
	fw.mu.Unlock()
	sort.Slice(refs, func(i, j int) bool {
		ri, rj := rankingOf(refs[i]), rankingOf(refs[j])
		if ri != rj {
			return ri > rj
		}
		return refs[i].id < refs[j].id
	})
	return refs
}

func rankingOf(r *ServiceReference) int {
	if v, ok := lookupProp(r.props, PropServiceRanking).(int); ok {
		return v
	}
	return 0
}

func contains(ss []string, want string) bool {
	for _, s := range ss {
		if s == want {
			return true
		}
	}
	return false
}

// getService dereferences a service object; nil if unregistered.
func (fw *Framework) getService(ref *ServiceReference) any {
	if ref == nil {
		return nil
	}
	fw.mu.Lock()
	defer fw.mu.Unlock()
	if ref.unregistered {
		return nil
	}
	return ref.object
}
