package osgi

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/ldap"
)

// Framework is the OSGi-like runtime: it owns the installed bundles, the
// service registry, and event delivery. Methods are safe for concurrent
// use; events are delivered synchronously on the calling goroutine, after
// internal locks are released, so listeners may call back into the
// framework.
type Framework struct {
	mu sync.Mutex

	bundles      map[int64]*Bundle
	nextBundleID int64

	services      map[int64]*ServiceReference
	nextServiceID int64

	bundleListeners    []bundleListenerEntry
	serviceListeners   []serviceListenerEntry
	frameworkListeners []frameworkListenerEntry
	nextListenerID     int64

	stopped bool
}

type serviceListenerEntry struct {
	id     int64
	l      ServiceListener
	filter *ldap.Filter
}

type bundleListenerEntry struct {
	id int64
	l  BundleListener
}

type frameworkListenerEntry struct {
	id int64
	l  FrameworkListener
}

// ErrFrameworkStopped is returned for operations on a shut-down framework.
var ErrFrameworkStopped = errors.New("osgi: framework stopped")

// NewFramework creates an empty running framework.
func NewFramework() *Framework {
	return &Framework{
		bundles:       map[int64]*Bundle{},
		nextBundleID:  1,
		services:      map[int64]*ServiceReference{},
		nextServiceID: 1,
	}
}

// Install adds a bundle in state Installed. Installing two bundles with
// the same symbolic name and version is rejected, as by Equinox defaults.
func (fw *Framework) Install(def Definition) (*Bundle, error) {
	if def.Manifest == nil {
		return nil, errors.New("osgi: bundle definition missing manifest")
	}
	if def.Manifest.SymbolicName == "" {
		return nil, errors.New("osgi: bundle manifest missing symbolic name")
	}
	fw.mu.Lock()
	if fw.stopped {
		fw.mu.Unlock()
		return nil, ErrFrameworkStopped
	}
	for _, b := range fw.bundles {
		if b.state != Uninstalled &&
			b.SymbolicName() == def.Manifest.SymbolicName &&
			b.Version().Compare(def.Manifest.Version) == 0 {
			fw.mu.Unlock()
			return nil, fmt.Errorf("osgi: bundle %s %s already installed",
				def.Manifest.SymbolicName, def.Manifest.Version)
		}
	}
	b := &Bundle{
		id:    fw.nextBundleID,
		def:   def,
		state: Installed,
		fw:    fw,
		wires: map[string]*Bundle{},
	}
	fw.nextBundleID++
	fw.bundles[b.id] = b
	fw.mu.Unlock()
	fw.dispatchBundleEvent(BundleEvent{Type: BundleInstalled, Bundle: b})
	return b, nil
}

// Bundles returns all installed bundles ordered by id.
func (fw *Framework) Bundles() []*Bundle {
	fw.mu.Lock()
	out := make([]*Bundle, 0, len(fw.bundles))
	for _, b := range fw.bundles {
		out = append(out, b)
	}
	fw.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// BundleByName returns the installed bundle with the given symbolic name
// (highest version if several), or nil.
func (fw *Framework) BundleByName(symbolicName string) *Bundle {
	fw.mu.Lock()
	defer fw.mu.Unlock()
	var best *Bundle
	for _, b := range fw.bundles {
		if b.state == Uninstalled || b.SymbolicName() != symbolicName {
			continue
		}
		if best == nil || b.Version().Compare(best.Version()) > 0 {
			best = b
		}
	}
	return best
}

// Bundle returns the bundle with the given id, or nil.
func (fw *Framework) Bundle(id int64) *Bundle {
	fw.mu.Lock()
	defer fw.mu.Unlock()
	return fw.bundles[id]
}

// RegisterService publishes a framework-level service not owned by any
// bundle (used by the runtime itself and by tests).
func (fw *Framework) RegisterService(interfaces []string, object any, props ldap.Properties) (*ServiceRegistration, error) {
	return fw.registerService(nil, interfaces, object, props)
}

// ServiceReferences returns matching live references, best first.
func (fw *Framework) ServiceReferences(iface string, filter *ldap.Filter) []*ServiceReference {
	return fw.getServiceReferences(iface, filter)
}

// Service dereferences a service reference, or nil.
func (fw *Framework) Service(ref *ServiceReference) any { return fw.getService(ref) }

// AddBundleListener subscribes to bundle events. The returned function
// unsubscribes; calling it more than once is harmless.
func (fw *Framework) AddBundleListener(l BundleListener) (remove func()) {
	if l == nil {
		return func() {}
	}
	fw.mu.Lock()
	defer fw.mu.Unlock()
	id := fw.nextListenerID
	fw.nextListenerID++
	fw.bundleListeners = append(fw.bundleListeners, bundleListenerEntry{id: id, l: l})
	return func() {
		fw.mu.Lock()
		defer fw.mu.Unlock()
		for i, e := range fw.bundleListeners {
			if e.id == id {
				fw.bundleListeners = append(fw.bundleListeners[:i], fw.bundleListeners[i+1:]...)
				return
			}
		}
	}
}

// AddServiceListener subscribes to service events; filter may be nil. The
// returned function unsubscribes.
func (fw *Framework) AddServiceListener(l ServiceListener, filter *ldap.Filter) (remove func()) {
	if l == nil {
		return func() {}
	}
	fw.mu.Lock()
	defer fw.mu.Unlock()
	id := fw.nextListenerID
	fw.nextListenerID++
	fw.serviceListeners = append(fw.serviceListeners, serviceListenerEntry{id: id, l: l, filter: filter})
	return func() {
		fw.mu.Lock()
		defer fw.mu.Unlock()
		for i, e := range fw.serviceListeners {
			if e.id == id {
				fw.serviceListeners = append(fw.serviceListeners[:i], fw.serviceListeners[i+1:]...)
				return
			}
		}
	}
}

// AddFrameworkListener subscribes to framework events. The returned
// function unsubscribes.
func (fw *Framework) AddFrameworkListener(l FrameworkListener) (remove func()) {
	if l == nil {
		return func() {}
	}
	fw.mu.Lock()
	defer fw.mu.Unlock()
	id := fw.nextListenerID
	fw.nextListenerID++
	fw.frameworkListeners = append(fw.frameworkListeners, frameworkListenerEntry{id: id, l: l})
	return func() {
		fw.mu.Lock()
		defer fw.mu.Unlock()
		for i, e := range fw.frameworkListeners {
			if e.id == id {
				fw.frameworkListeners = append(fw.frameworkListeners[:i], fw.frameworkListeners[i+1:]...)
				return
			}
		}
	}
}

// Shutdown stops all active bundles in reverse-id order and stops the
// framework. Further installs are rejected.
func (fw *Framework) Shutdown() error {
	bundles := fw.Bundles()
	var firstErr error
	for i := len(bundles) - 1; i >= 0; i-- {
		b := bundles[i]
		if b.State() == Active {
			if err := fw.stopBundle(b); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	fw.mu.Lock()
	fw.stopped = true
	fw.mu.Unlock()
	return firstErr
}

// startBundle drives Installed/Resolved -> Active.
func (fw *Framework) startBundle(b *Bundle) error {
	fw.mu.Lock()
	if fw.stopped {
		fw.mu.Unlock()
		return ErrFrameworkStopped
	}
	switch b.state {
	case Active, Starting:
		fw.mu.Unlock()
		return nil // already started; idempotent per spec
	case Uninstalled:
		fw.mu.Unlock()
		return fmt.Errorf("osgi: cannot start uninstalled bundle %s", b.SymbolicName())
	case Stopping:
		fw.mu.Unlock()
		return fmt.Errorf("osgi: bundle %s is stopping", b.SymbolicName())
	}
	resolvedNow := false
	if b.state == Installed {
		if err := fw.resolveLocked(b); err != nil {
			fw.mu.Unlock()
			return err
		}
		resolvedNow = true
	}
	b.state = Starting
	ctx := &Context{bundle: b, fw: fw, valid: true}
	b.ctx = ctx
	fw.mu.Unlock()

	if resolvedNow {
		fw.dispatchBundleEvent(BundleEvent{Type: BundleResolved, Bundle: b})
	}
	fw.dispatchBundleEvent(BundleEvent{Type: BundleStarting, Bundle: b})

	if act := b.def.Activator; act != nil {
		if err := act.Start(ctx); err != nil {
			fw.mu.Lock()
			b.state = Resolved
			ctx.valid = false
			b.ctx = nil
			fw.mu.Unlock()
			fw.dispatchFrameworkEvent(FrameworkEvent{Bundle: b, Err: err, Info: "activator start failed"})
			return fmt.Errorf("osgi: activator of %s failed: %w", b.SymbolicName(), err)
		}
	}
	fw.mu.Lock()
	b.state = Active
	fw.mu.Unlock()
	fw.dispatchBundleEvent(BundleEvent{Type: BundleStarted, Bundle: b})
	return nil
}

// stopBundle drives Active -> Resolved.
func (fw *Framework) stopBundle(b *Bundle) error {
	fw.mu.Lock()
	if b.state != Active {
		state := b.state
		fw.mu.Unlock()
		if state == Resolved || state == Installed {
			return nil // stopping a non-started bundle is a no-op
		}
		return fmt.Errorf("osgi: cannot stop bundle %s in state %v", b.SymbolicName(), state)
	}
	b.state = Stopping
	ctx := b.ctx
	fw.mu.Unlock()
	fw.dispatchBundleEvent(BundleEvent{Type: BundleStopping, Bundle: b})

	var actErr error
	if act := b.def.Activator; act != nil {
		actErr = act.Stop(ctx)
	}
	// Unregister any services the bundle left behind, newest first.
	fw.mu.Lock()
	regs := b.regs
	b.regs = nil
	fw.mu.Unlock()
	for i := len(regs) - 1; i >= 0; i-- {
		if err := regs[i].Unregister(); err != nil && !errors.Is(err, ErrServiceUnregistered) {
			fw.dispatchFrameworkEvent(FrameworkEvent{Bundle: b, Err: err, Info: "service cleanup failed"})
		}
	}
	fw.mu.Lock()
	b.state = Resolved
	if b.ctx != nil {
		b.ctx.valid = false
		b.ctx = nil
	}
	fw.mu.Unlock()
	fw.dispatchBundleEvent(BundleEvent{Type: BundleStopped, Bundle: b})
	if actErr != nil {
		fw.dispatchFrameworkEvent(FrameworkEvent{Bundle: b, Err: actErr, Info: "activator stop failed"})
		return fmt.Errorf("osgi: activator stop of %s failed: %w", b.SymbolicName(), actErr)
	}
	return nil
}

// uninstallBundle removes the bundle entirely.
func (fw *Framework) uninstallBundle(b *Bundle) error {
	if b.State() == Active {
		if err := fw.stopBundle(b); err != nil {
			return fmt.Errorf("osgi: stopping before uninstall: %w", err)
		}
	}
	fw.mu.Lock()
	if b.state == Uninstalled {
		fw.mu.Unlock()
		return errors.New("osgi: bundle already uninstalled")
	}
	b.state = Uninstalled
	delete(fw.bundles, b.id)
	// Invalidate wires of bundles importing from this one; they drop back
	// to Installed and must re-resolve.
	var unresolved []*Bundle
	for _, other := range fw.bundles {
		for pkg, exp := range other.wires {
			if exp == b {
				delete(other.wires, pkg)
				if other.state == Resolved {
					other.state = Installed
					unresolved = append(unresolved, other)
				}
			}
		}
	}
	fw.mu.Unlock()
	for _, u := range unresolved {
		fw.dispatchBundleEvent(BundleEvent{Type: BundleUnresolved, Bundle: u})
	}
	fw.dispatchBundleEvent(BundleEvent{Type: BundleUninstalled, Bundle: b})
	return nil
}

// updateBundle swaps in a new definition, preserving the bundle id. An
// active bundle is stopped first and restarted afterwards (OSGi update
// semantics).
func (fw *Framework) updateBundle(b *Bundle, def Definition) error {
	if def.Manifest == nil {
		return errors.New("osgi: update without manifest")
	}
	wasActive := b.State() == Active
	if wasActive {
		if err := fw.stopBundle(b); err != nil {
			return fmt.Errorf("osgi: stopping for update: %w", err)
		}
	}
	fw.mu.Lock()
	if b.state == Uninstalled {
		fw.mu.Unlock()
		return errors.New("osgi: cannot update uninstalled bundle")
	}
	b.def = def
	b.persists = true
	b.wires = map[string]*Bundle{}
	b.state = Installed
	fw.mu.Unlock()
	fw.dispatchBundleEvent(BundleEvent{Type: BundleUpdated, Bundle: b})
	if wasActive {
		return fw.startBundle(b)
	}
	return nil
}

func (fw *Framework) dispatchBundleEvent(ev BundleEvent) {
	fw.mu.Lock()
	ls := make([]bundleListenerEntry, len(fw.bundleListeners))
	copy(ls, fw.bundleListeners)
	fw.mu.Unlock()
	for _, e := range ls {
		e.l.BundleChanged(ev)
	}
}

func (fw *Framework) dispatchServiceEvent(ev ServiceEvent) {
	fw.mu.Lock()
	entries := make([]serviceListenerEntry, len(fw.serviceListeners))
	copy(entries, fw.serviceListeners)
	props := ev.Reference.props
	fw.mu.Unlock()
	for _, e := range entries {
		if e.filter.Matches(props) {
			e.l.ServiceChanged(ev)
		}
	}
}

func (fw *Framework) dispatchFrameworkEvent(ev FrameworkEvent) {
	fw.mu.Lock()
	ls := make([]frameworkListenerEntry, len(fw.frameworkListeners))
	copy(ls, fw.frameworkListeners)
	fw.mu.Unlock()
	for _, e := range ls {
		e.l.FrameworkEvent(ev)
	}
}
