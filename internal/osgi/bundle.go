package osgi

import (
	"fmt"

	"repro/internal/ldap"
	"repro/internal/manifest"
)

// State is a bundle lifecycle state (OSGi core spec §4.4).
type State int

// Bundle states.
const (
	Installed State = iota + 1
	Resolved
	Starting
	Active
	Stopping
	Uninstalled
)

func (s State) String() string {
	switch s {
	case Installed:
		return "INSTALLED"
	case Resolved:
		return "RESOLVED"
	case Starting:
		return "STARTING"
	case Active:
		return "ACTIVE"
	case Stopping:
		return "STOPPING"
	case Uninstalled:
		return "UNINSTALLED"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Activator is the bundle's start/stop hook, the analogue of
// org.osgi.framework.BundleActivator.
type Activator interface {
	Start(ctx *Context) error
	Stop(ctx *Context) error
}

// Definition is everything needed to install a bundle: its manifest, an
// optional activator, and named resources (descriptor XML files and the
// like, the analogue of entries inside the bundle JAR).
type Definition struct {
	Manifest  *manifest.Manifest
	Activator Activator
	Resources map[string]string
}

// Bundle is an installed bundle.
type Bundle struct {
	id       int64
	def      Definition
	state    State
	fw       *Framework
	ctx      *Context
	wires    map[string]*Bundle // imported package name -> chosen exporter
	regs     []*ServiceRegistration
	persists bool // survived an update; kept for diagnostics
}

// ID returns the framework-assigned bundle id (0 is the system bundle).
func (b *Bundle) ID() int64 { return b.id }

// SymbolicName returns the bundle's symbolic name.
func (b *Bundle) SymbolicName() string {
	if b.def.Manifest == nil {
		return ""
	}
	return b.def.Manifest.SymbolicName
}

// Version returns the bundle version.
func (b *Bundle) Version() manifest.Version {
	if b.def.Manifest == nil {
		return manifest.Version{}
	}
	return b.def.Manifest.Version
}

// Manifest returns the bundle's manifest.
func (b *Bundle) Manifest() *manifest.Manifest { return b.def.Manifest }

// State returns the current lifecycle state.
func (b *Bundle) State() State {
	b.fw.mu.Lock()
	defer b.fw.mu.Unlock()
	return b.state
}

// Resource returns a named bundle resource (e.g. "OSGI-INF/camera.xml").
func (b *Bundle) Resource(name string) (string, bool) {
	v, ok := b.def.Resources[name]
	return v, ok
}

// WiredTo reports which bundle satisfies the given imported package, if
// the bundle is resolved.
func (b *Bundle) WiredTo(pkg string) (*Bundle, bool) {
	b.fw.mu.Lock()
	defer b.fw.mu.Unlock()
	e, ok := b.wires[pkg]
	return e, ok
}

// Context returns the bundle's context; nil unless Starting/Active/Stopping.
func (b *Bundle) Context() *Context {
	b.fw.mu.Lock()
	defer b.fw.mu.Unlock()
	return b.ctx
}

// Start resolves (if needed) and starts the bundle.
func (b *Bundle) Start() error { return b.fw.startBundle(b) }

// Stop stops the bundle, unregistering its services.
func (b *Bundle) Stop() error { return b.fw.stopBundle(b) }

// Uninstall removes the bundle from the framework.
func (b *Bundle) Uninstall() error { return b.fw.uninstallBundle(b) }

// Update replaces the bundle's definition in place, keeping its id. An
// active bundle is stopped, updated and restarted.
func (b *Bundle) Update(def Definition) error { return b.fw.updateBundle(b, def) }

// String implements fmt.Stringer.
func (b *Bundle) String() string {
	return fmt.Sprintf("bundle[%d] %s %s", b.id, b.SymbolicName(), b.Version())
}

// Context is the capability a started bundle uses to talk to the
// framework, the analogue of org.osgi.framework.BundleContext.
type Context struct {
	bundle *Bundle
	fw     *Framework
	valid  bool
}

// Bundle returns the owning bundle.
func (c *Context) Bundle() *Bundle { return c.bundle }

// Framework returns the owning framework.
func (c *Context) Framework() *Framework { return c.fw }

// RegisterService publishes a service on behalf of this bundle.
func (c *Context) RegisterService(interfaces []string, object any, props ldap.Properties) (*ServiceRegistration, error) {
	if !c.isValid() {
		return nil, fmt.Errorf("osgi: context of %s is no longer valid", c.bundle.SymbolicName())
	}
	reg, err := c.fw.registerService(c.bundle, interfaces, object, props)
	if err != nil {
		return nil, err
	}
	c.fw.mu.Lock()
	c.bundle.regs = append(c.bundle.regs, reg)
	c.fw.mu.Unlock()
	return reg, nil
}

// ServiceReferences returns matching live service references, best first.
func (c *Context) ServiceReferences(iface string, filter *ldap.Filter) []*ServiceReference {
	return c.fw.getServiceReferences(iface, filter)
}

// ServiceReference returns the best live reference for iface, or nil.
func (c *Context) ServiceReference(iface string) *ServiceReference {
	refs := c.fw.getServiceReferences(iface, nil)
	if len(refs) == 0 {
		return nil
	}
	return refs[0]
}

// Service dereferences a reference to its service object, or nil.
func (c *Context) Service(ref *ServiceReference) any { return c.fw.getService(ref) }

// AddServiceListener subscribes to service events, optionally filtered.
// The returned function unsubscribes.
func (c *Context) AddServiceListener(l ServiceListener, filter *ldap.Filter) (remove func()) {
	return c.fw.AddServiceListener(l, filter)
}

// AddBundleListener subscribes to bundle lifecycle events. The returned
// function unsubscribes.
func (c *Context) AddBundleListener(l BundleListener) (remove func()) {
	return c.fw.AddBundleListener(l)
}

// Bundles lists all installed bundles.
func (c *Context) Bundles() []*Bundle { return c.fw.Bundles() }

// InstallBundle installs a new bundle into the owning framework.
func (c *Context) InstallBundle(def Definition) (*Bundle, error) {
	if !c.isValid() {
		return nil, fmt.Errorf("osgi: context of %s is no longer valid", c.bundle.SymbolicName())
	}
	return c.fw.Install(def)
}

func (c *Context) isValid() bool {
	c.fw.mu.Lock()
	defer c.fw.mu.Unlock()
	return c.valid
}
