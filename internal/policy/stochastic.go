// Stochastic contracts: distribution-valued CPU budgets and the
// Monte-Carlo admission test over the composed per-CPU load.
//
// The paper's admission control is binary — a declared budget either
// fits under the bound or the component is denied. Real execution times
// are distributions, not constants (Nandi, Monot & Oriol, "Stochastic
// Contracts for Runtime Checking of Component-based Real-time
// Systems"): a component may declare its budget as normal(µ,σ) together
// with a probability p, asking to be admitted iff the composed load on
// its CPU stays under the bound with probability ≥ p. The sampler is
// seeded from the participating contracts themselves, so the verdict is
// a pure function of the composition — byte-identical across engines,
// shard counts, and the plan compiler.
package policy

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/sim"
)

// DistKind enumerates the supported budget distribution families.
type DistKind int

const (
	// Normal is a Gaussian budget: dist="normal(mu,sigma)".
	Normal DistKind = iota + 1
	// LogNormal is exp(N(mu,sigma)): dist="lognormal(mu,sigma)".
	LogNormal
	// Empirical is a weighted histogram: dist="empirical(v:w,v:w,...)".
	Empirical
)

// DefaultMetP is the deadline-met probability assumed when a
// distribution-valued budget omits the p attribute.
const DefaultMetP = 0.95

// Dist is a distribution-valued CPU budget. Samples are CPU fractions
// (same unit as Contract.CPUUsage), clamped to be non-negative.
type Dist struct {
	Kind DistKind
	// Mu, Sigma parameterise Normal (mean, stddev of the fraction) and
	// LogNormal (mean, stddev of the underlying normal).
	Mu, Sigma float64
	// Values/Weights are the Empirical support points and their
	// (positive, not necessarily normalised) weights, in declared order.
	Values  []float64
	Weights []float64
}

// ParseDist parses the descriptor dist grammar:
//
//	normal(mu,sigma) | lognormal(mu,sigma) | empirical(v:w,v:w,...)
//
// It returns a typed error for malformed strings; it never panics.
func ParseDist(s string) (*Dist, error) {
	s = strings.TrimSpace(s)
	open := strings.IndexByte(s, '(')
	if open < 0 || !strings.HasSuffix(s, ")") {
		return nil, fmt.Errorf("dist %q: want family(args)", s)
	}
	family := s[:open]
	args := s[open+1 : len(s)-1]
	switch family {
	case "normal", "lognormal":
		parts := strings.Split(args, ",")
		if len(parts) != 2 {
			return nil, fmt.Errorf("dist %q: want %s(mu,sigma)", s, family)
		}
		mu, err := strconv.ParseFloat(strings.TrimSpace(parts[0]), 64)
		if err != nil {
			return nil, fmt.Errorf("dist %q: bad mu: %v", s, err)
		}
		sigma, err := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
		if err != nil {
			return nil, fmt.Errorf("dist %q: bad sigma: %v", s, err)
		}
		if math.IsNaN(mu) || math.IsInf(mu, 0) || math.IsNaN(sigma) || math.IsInf(sigma, 0) {
			return nil, fmt.Errorf("dist %q: parameters must be finite", s)
		}
		if sigma < 0 {
			return nil, fmt.Errorf("dist %q: sigma must be >= 0", s)
		}
		if family == "normal" && mu < 0 {
			return nil, fmt.Errorf("dist %q: mu must be >= 0", s)
		}
		kind := Normal
		if family == "lognormal" {
			kind = LogNormal
		}
		return &Dist{Kind: kind, Mu: mu, Sigma: sigma}, nil
	case "empirical":
		if strings.TrimSpace(args) == "" {
			return nil, fmt.Errorf("dist %q: empirical needs at least one v:w point", s)
		}
		parts := strings.Split(args, ",")
		d := &Dist{Kind: Empirical}
		for _, p := range parts {
			vw := strings.Split(p, ":")
			if len(vw) != 2 {
				return nil, fmt.Errorf("dist %q: point %q: want value:weight", s, p)
			}
			v, err := strconv.ParseFloat(strings.TrimSpace(vw[0]), 64)
			if err != nil {
				return nil, fmt.Errorf("dist %q: bad value in %q: %v", s, p, err)
			}
			w, err := strconv.ParseFloat(strings.TrimSpace(vw[1]), 64)
			if err != nil {
				return nil, fmt.Errorf("dist %q: bad weight in %q: %v", s, p, err)
			}
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				return nil, fmt.Errorf("dist %q: value %v must be finite and >= 0", s, v)
			}
			if math.IsNaN(w) || math.IsInf(w, 0) || w <= 0 {
				return nil, fmt.Errorf("dist %q: weight %v must be finite and > 0", s, w)
			}
			d.Values = append(d.Values, v)
			d.Weights = append(d.Weights, w)
		}
		return d, nil
	default:
		return nil, fmt.Errorf("dist %q: unknown family %q (want normal, lognormal or empirical)", s, family)
	}
}

// String renders the canonical dist grammar; ParseDist(d.String()) is a
// fixed point (floats print with strconv 'g' shortest-round-trip form).
func (d *Dist) String() string {
	g := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	switch d.Kind {
	case Normal:
		return "normal(" + g(d.Mu) + "," + g(d.Sigma) + ")"
	case LogNormal:
		return "lognormal(" + g(d.Mu) + "," + g(d.Sigma) + ")"
	case Empirical:
		var b strings.Builder
		b.WriteString("empirical(")
		for i, v := range d.Values {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(g(v))
			b.WriteByte(':')
			b.WriteString(g(d.Weights[i]))
		}
		b.WriteByte(')')
		return b.String()
	default:
		return "invalid"
	}
}

// Mean returns the distribution's expected CPU fraction.
func (d *Dist) Mean() float64 {
	switch d.Kind {
	case Normal:
		return d.Mu
	case LogNormal:
		return math.Exp(d.Mu + d.Sigma*d.Sigma/2)
	case Empirical:
		var sum, wsum float64
		for i, v := range d.Values {
			sum += v * d.Weights[i]
			wsum += d.Weights[i]
		}
		if wsum <= 0 {
			return 0
		}
		return sum / wsum
	default:
		return 0
	}
}

// Sample draws one CPU fraction from the distribution, clamped to be
// non-negative.
func (d *Dist) Sample(r *sim.Rand) float64 {
	var v float64
	switch d.Kind {
	case Normal:
		v = d.Mu + d.Sigma*r.NormFloat64()
	case LogNormal:
		v = math.Exp(d.Mu + d.Sigma*r.NormFloat64())
	case Empirical:
		var wsum float64
		for _, w := range d.Weights {
			wsum += w
		}
		u := r.Float64() * wsum
		for i, w := range d.Weights {
			u -= w
			if u < 0 {
				v = d.Values[i]
				break
			}
			v = d.Values[i] // rounding: last point
		}
	}
	if v < 0 {
		return 0
	}
	return v
}

// MCTrials is the fixed Monte-Carlo trial count; part of the pinned
// verdict (changing it changes every stochastic admission digest).
const MCTrials = 512

// probEps absorbs the quantisation of p estimates to 1/MCTrials.
const probEps = 1e-12

// StochasticVerdict is the Monte-Carlo admission computation shared by
// the runtime resolvers and the plan compiler's admission deltas.
type StochasticVerdict struct {
	// P is the estimated probability that the composed load on the
	// candidate's CPU stays at or under the bound.
	P float64
	// Required is the strictest declared deadline-met probability among
	// the stochastic participants (candidate included).
	Required float64
	// Trials is the sample count behind P.
	Trials int
}

// Admitted reports whether the estimate clears the requirement.
func (v StochasticVerdict) Admitted() bool { return v.P+probEps >= v.Required }

// Decision renders the verdict in the resolvers' Decision form. The
// reason string enters pinned span streams, so the runtime engines and
// the plan compiler all use this one renderer.
func (v StochasticVerdict) Decision(cpu int, bound float64) Decision {
	if v.Admitted() {
		d := admit("cpu%d P(load≤%.3f)=%.3f meets p=%.3f (%d trials)",
			cpu, bound, v.P, v.Required, v.Trials)
		d.Verdict = d.Reason
		return d
	}
	return deny("cpu%d P(load≤%.3f)=%.3f below p=%.3f (%d trials)",
		cpu, bound, v.P, v.Required, v.Trials)
}

// MCVerdict Monte-Carlo-samples the composed load on the candidate's
// CPU: the constant budgets contribute their declared fractions, every
// distribution-valued budget is sampled per trial, and the verdict is
// the fraction of trials in which the total stays at or under bound.
// onCPU must be the admitted contracts on cand.CPU in name order with
// the candidate excluded; cpuLoad their summed declared budgets. The
// second return is false when no participant carries a distribution —
// callers then fall back to the constant-budget test. The sampler seed
// is derived from the participants alone, so the same composition
// yields the same verdict everywhere.
func MCVerdict(bound, cpuLoad float64, onCPU []Contract, cand Contract) (StochasticVerdict, bool) {
	var stoch []Contract
	for _, c := range onCPU {
		if c.Budget != nil {
			stoch = append(stoch, c)
		}
	}
	if cand.Budget == nil && len(stoch) == 0 {
		return StochasticVerdict{}, false
	}
	// The constant part of the composition: total declared load minus
	// the declared fractions the sampled draws replace.
	base := cpuLoad
	required := 0.0
	for _, s := range stoch {
		base -= s.CPUUsage
		if p := metP(s.MetP); p > required {
			required = p
		}
	}
	if cand.Budget != nil {
		if p := metP(cand.MetP); p > required {
			required = p
		}
	}
	r := sim.NewRand(mcSeed(bound, cand.CPU, stoch, cand))
	met := 0
	for t := 0; t < MCTrials; t++ {
		total := base
		for _, s := range stoch {
			total += s.Budget.Sample(r)
		}
		if cand.Budget != nil {
			total += cand.Budget.Sample(r)
		} else {
			total += cand.CPUUsage
		}
		if total <= bound+1e-9 {
			met++
		}
	}
	return StochasticVerdict{
		P:        float64(met) / float64(MCTrials),
		Required: required,
		Trials:   MCTrials,
	}, true
}

func metP(p float64) float64 {
	if p <= 0 || p >= 1 {
		return DefaultMetP
	}
	return p
}

// mcSeed folds the admission question into a 64-bit FNV-1a digest: the
// CPU, the bound, and every stochastic participant's identity. No clock,
// no map order, no shard count — the seed is stable wherever the same
// composition is tested.
func mcSeed(bound float64, cpu int, stoch []Contract, cand Contract) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	mix := func(s string) {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= prime
		}
	}
	mixU := func(u uint64) {
		for i := 0; i < 8; i++ {
			h ^= (u >> (8 * i)) & 0xff
			h *= prime
		}
	}
	mix("drcom.stochastic.admit")
	mixU(uint64(cpu))
	mixU(math.Float64bits(bound))
	one := func(c Contract) {
		mix(c.Name)
		mix("|")
		if c.Budget != nil {
			mix(c.Budget.String())
		}
		mixU(math.Float64bits(metP(c.MetP)))
	}
	for _, s := range stoch {
		one(s)
	}
	mix("cand|")
	one(cand)
	return h
}
