package policy

import (
	"math"
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestParseDistGrammar(t *testing.T) {
	cases := []struct {
		in   string
		want string // canonical String(); "" = parse error expected
	}{
		{"normal(0.3,0.05)", "normal(0.3,0.05)"},
		{" normal( 0.3 , 0.05 ) ", "normal(0.3,0.05)"},
		{"lognormal(-1.2,0.4)", "lognormal(-1.2,0.4)"},
		{"empirical(0.1:1,0.2:2,0.4:1)", "empirical(0.1:1,0.2:2,0.4:1)"},
		{"normal(0.3)", ""},
		{"normal(0.3,0.05,7)", ""},
		{"normal(a,b)", ""},
		{"normal(0.3,-0.1)", ""},
		{"normal(-0.3,0.1)", ""},
		{"normal(NaN,0.1)", ""},
		{"normal(+Inf,0.1)", ""},
		{"weibull(1,2)", ""},
		{"normal", ""},
		{"", ""},
		{"empirical()", ""},
		{"empirical(0.1)", ""},
		{"empirical(0.1:0)", ""},
		{"empirical(0.1:-1)", ""},
		{"empirical(-0.1:1)", ""},
		{"empirical(0.1:1:2)", ""},
	}
	for _, c := range cases {
		d, err := ParseDist(c.in)
		if c.want == "" {
			if err == nil {
				t.Errorf("ParseDist(%q): want error, got %v", c.in, d)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseDist(%q): %v", c.in, err)
			continue
		}
		if got := d.String(); got != c.want {
			t.Errorf("ParseDist(%q).String() = %q, want %q", c.in, got, c.want)
		}
		// Canonical form is a parse fixed point.
		d2, err := ParseDist(d.String())
		if err != nil {
			t.Errorf("reparse %q: %v", d.String(), err)
		} else if d2.String() != d.String() {
			t.Errorf("String not a fixed point: %q -> %q", d.String(), d2.String())
		}
	}
}

func TestDistMeanAndSample(t *testing.T) {
	r := sim.NewRand(7)
	for _, in := range []string{
		"normal(0.3,0.05)",
		"lognormal(-1.2,0.4)",
		"empirical(0.1:1,0.2:2,0.4:1)",
	} {
		d, err := ParseDist(in)
		if err != nil {
			t.Fatalf("ParseDist(%q): %v", in, err)
		}
		const n = 20000
		var sum float64
		for i := 0; i < n; i++ {
			v := d.Sample(r)
			if v < 0 {
				t.Fatalf("%s: negative sample %v", in, v)
			}
			sum += v
		}
		got, want := sum/n, d.Mean()
		if math.Abs(got-want) > 0.02*math.Max(want, 0.1) {
			t.Errorf("%s: sample mean %.4f, analytic mean %.4f", in, got, want)
		}
	}
}

func TestSampleDeterministic(t *testing.T) {
	d, _ := ParseDist("normal(0.3,0.05)")
	a, b := sim.NewRand(42), sim.NewRand(42)
	for i := 0; i < 100; i++ {
		if x, y := d.Sample(a), d.Sample(b); x != y {
			t.Fatalf("draw %d diverged: %v vs %v", i, x, y)
		}
	}
}

func TestUtilizationLegacyPathUnchanged(t *testing.T) {
	// Without distributions the verdict and the reason string must be
	// exactly the pre-stochastic ones (deny spans pin these strings).
	view := View{NumCPUs: 1, Admitted: []Contract{{Name: "a", CPU: 0, CPUUsage: 0.6}}}
	view.CPULoad = []float64{0.6}
	u := Utilization{}
	d := u.Admit(view, Contract{Name: "b", CPU: 0, CPUUsage: 0.3})
	if !d.Admit || d.Reason != "cpu0 budget 0.900 within bound 1.000" {
		t.Fatalf("legacy admit changed: %+v", d)
	}
	d = u.Admit(view, Contract{Name: "c", CPU: 0, CPUUsage: 0.5})
	if d.Admit || d.Reason != "cpu0 budget 1.100 exceeds bound 1.000" {
		t.Fatalf("legacy deny changed: %+v", d)
	}
}

func TestStochasticAdmission(t *testing.T) {
	dist, err := ParseDist("normal(0.3,0.02)")
	if err != nil {
		t.Fatal(err)
	}
	u := Utilization{}
	view := View{NumCPUs: 1, Admitted: []Contract{{Name: "a", CPU: 0, CPUUsage: 0.5}}, Stochastic: true}

	// Plenty of headroom: 0.5 + N(0.3, 0.02) ≤ 1.0 essentially always.
	cand := Contract{Name: "b", CPU: 0, CPUUsage: 0.3, Budget: dist, MetP: 0.99}
	d := u.Admit(view, cand)
	if !d.Admit {
		t.Fatalf("want admit with headroom, got %+v", d)
	}
	if !strings.Contains(d.Reason, "trials") {
		t.Fatalf("stochastic reason missing trial count: %q", d.Reason)
	}

	// The same distribution against a nearly full CPU: mean load 1.1,
	// P(met) ~ 0 — must deny even though a mean-based test would too,
	// and the reason must carry the probabilities.
	full := View{NumCPUs: 1, Admitted: []Contract{{Name: "a", CPU: 0, CPUUsage: 0.8}}, Stochastic: true}
	d = u.Admit(full, cand)
	if d.Admit {
		t.Fatalf("want deny at mean load 1.1, got %+v", d)
	}
	if !strings.Contains(d.Reason, "below p=") {
		t.Fatalf("deny reason: %q", d.Reason)
	}

	// The stochastic win: constant admission at 0.72+0.3 > 1.0 would
	// deny a constant 0.3 budget at bound 1.0 with eps, but N(0.25,0.02)
	// declared with nominal 0.3 clears p=0.95 because the actual draw is
	// almost always under 0.28.
	tight := View{NumCPUs: 1, Admitted: []Contract{{Name: "a", CPU: 0, CPUUsage: 0.71}}, Stochastic: true}
	lean, _ := ParseDist("normal(0.25,0.01)")
	d = u.Admit(tight, Contract{Name: "b", CPU: 0, CPUUsage: 0.3, Budget: lean, MetP: 0.95})
	if !d.Admit {
		t.Fatalf("stochastic admission should clear where constant denies: %+v", d)
	}
	if d2 := u.Admit(tight, Contract{Name: "b", CPU: 0, CPUUsage: 0.3}); d2.Admit {
		t.Fatalf("constant contract should deny at 1.01: %+v", d2)
	}
}

func TestStochasticVerdictDeterministic(t *testing.T) {
	dist, _ := ParseDist("normal(0.3,0.05)")
	onCPU := []Contract{
		{Name: "a", CPU: 0, CPUUsage: 0.3, Budget: dist, MetP: 0.97},
		{Name: "b", CPU: 0, CPUUsage: 0.2},
	}
	cand := Contract{Name: "c", CPU: 0, CPUUsage: 0.3, Budget: dist, MetP: 0.99}
	v1, ok1 := MCVerdict(1.0, 0.5, onCPU, cand)
	v2, ok2 := MCVerdict(1.0, 0.5, onCPU, cand)
	if !ok1 || !ok2 || v1 != v2 {
		t.Fatalf("verdict not deterministic: %+v vs %+v", v1, v2)
	}
	if v1.Required != 0.99 {
		t.Fatalf("required p should be the strictest declared: %+v", v1)
	}
	// No stochastic participants → fall back to the constant test.
	if _, ok := MCVerdict(1.0, 0.2, []Contract{{Name: "x", CPU: 0, CPUUsage: 0.2}}, Contract{Name: "y", CPU: 0, CPUUsage: 0.1}); ok {
		t.Fatal("MCVerdict should report not-stochastic without distributions")
	}
}
