// Package policy implements the constraint-resolving services of the
// paper's DRCR: the internal admission policy plus the "customized
// resolving service" extension point that applications plug in through
// the service registry to fit their context (§1, §2.2, §4.3).
//
// A resolving service answers one question: given the real-time contracts
// already admitted on this system, may this candidate also be admitted
// without impairing anyone's contract? Several classic answers are
// provided: declared-budget utilization, rate-monotonic response-time
// analysis, and the EDF density bound.
package policy

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Contract is the real-time contract a component declares in its
// descriptor, reduced to what admission analysis needs.
type Contract struct {
	// Name identifies the component.
	Name string
	// CPU is the processor the task is pinned to.
	CPU int
	// Priority orders preemption; lower is more urgent.
	Priority int
	// CPUUsage is the declared CPU budget fraction (descriptor cpuusage).
	CPUUsage float64
	// Period is the release period; 0 for aperiodic components.
	Period time.Duration
	// Importance ranks the component for adaptation decisions (higher =
	// more important; the descriptor's optional importance attribute).
	Importance int
	// Budget, when non-nil, declares the CPU budget as a distribution
	// instead of the CPUUsage constant (descriptor <budget dist=...>).
	// CPUUsage stays the declared nominal fraction — it is what the load
	// accumulators track; the distribution refines it at admission time.
	Budget *Dist
	// MetP is the declared deadline-met probability for Budget
	// (descriptor <budget p=...>); 0 means DefaultMetP.
	MetP float64
}

// Cost returns the per-period execution budget implied by the declared
// CPU usage (C = U·T). Zero for aperiodic contracts.
func (c Contract) Cost() time.Duration {
	if c.Period <= 0 {
		return 0
	}
	return time.Duration(c.CPUUsage * float64(c.Period))
}

// View is the global system picture a resolving service reasons over: the
// DRCR's accurate global view of promised contracts (§2.2).
type View struct {
	NumCPUs  int
	Admitted []Contract
	// Epoch counts admitted-set membership changes at the view's producer.
	// Two views with equal epochs from the same producer describe the same
	// admitted set, so consumers may reuse decisions derived from one.
	Epoch uint64
	// CPULoad, when non-nil, is the summed declared budget per processor
	// over Admitted, maintained incrementally by the view's producer so
	// resolvers need not rescan the contract list. Producers that do not
	// track it leave it nil and resolvers fall back to summing Admitted.
	CPULoad []float64
	// Stochastic is set by producers whose admitted set may contain
	// distribution-valued budgets. When false and the candidate carries
	// none, Utilization takes the constant-budget fast path without
	// scanning Admitted.
	Stochastic bool
}

// OnCPU returns the admitted contracts pinned to the given processor.
func (v View) OnCPU(cpuID int) []Contract {
	var out []Contract
	for _, c := range v.Admitted {
		if c.CPU == cpuID {
			out = append(out, c)
		}
	}
	return out
}

// Load returns the summed declared budget on the given processor, using
// the precomputed per-CPU accumulator when present.
func (v View) Load(cpuID int) float64 {
	if v.CPULoad != nil && cpuID >= 0 && cpuID < len(v.CPULoad) {
		return v.CPULoad[cpuID]
	}
	var sum float64
	for _, c := range v.Admitted {
		if c.CPU == cpuID {
			sum += c.CPUUsage
		}
	}
	return sum
}

// Decision is a resolving service's verdict.
type Decision struct {
	Admit  bool
	Reason string
	// Verdict carries the Monte-Carlo admission verdict verbatim when a
	// stochastic budget decided the admission; aggregators (Chain) rewrite
	// Reason but must pass Verdict through so the admit span and the plan
	// compiler render the identical string.
	Verdict string
}

func admit(format string, args ...any) Decision {
	return Decision{Admit: true, Reason: fmt.Sprintf(format, args...)}
}

func deny(format string, args ...any) Decision {
	return Decision{Admit: false, Reason: fmt.Sprintf(format, args...)}
}

// Resolver is the resolving-service contract. Implementations must be
// stateless with respect to a single Admit call so DRCR can consult them
// speculatively.
type Resolver interface {
	// Name identifies the policy in logs and service properties.
	Name() string
	// Admit decides whether cand fits alongside view.Admitted.
	Admit(view View, cand Contract) Decision
}

// ServiceInterface is the service-registry interface name under which
// customized resolving services are published for DRCR to discover.
const ServiceInterface = "drcom.ResolvingService"

// Utilization admits while the summed declared budgets on the candidate's
// CPU stay within Bound. This is the DRCR's internal default: it enforces
// exactly what components promised via cpuusage.
type Utilization struct {
	// Bound is the per-CPU budget ceiling; 0 means 1.0 (full CPU).
	Bound float64
}

// Name implements Resolver.
func (u Utilization) Name() string { return "utilization" }

// Admit implements Resolver.
func (u Utilization) Admit(view View, cand Contract) Decision {
	bound := u.Bound
	if bound <= 0 {
		bound = 1.0
	}
	if cand.Budget != nil || view.Stochastic {
		if v, ok := MCVerdict(bound, view.Load(cand.CPU), view.OnCPU(cand.CPU), cand); ok {
			return v.Decision(cand.CPU, bound)
		}
	}
	sum := cand.CPUUsage + view.Load(cand.CPU)
	const eps = 1e-9
	if sum > bound+eps {
		return deny("cpu%d budget %.3f exceeds bound %.3f", cand.CPU, sum, bound)
	}
	return admit("cpu%d budget %.3f within bound %.3f", cand.CPU, sum, bound)
}

// RMA performs exact rate-monotonic response-time analysis over the
// periodic contracts on the candidate's CPU, using declared budgets as
// execution costs and declared priorities for preemption order. The
// candidate and every already-admitted task must meet their implicit
// deadlines (D = T).
type RMA struct{}

// Name implements Resolver.
func (RMA) Name() string { return "rma" }

// Admit implements Resolver.
func (RMA) Admit(view View, cand Contract) Decision {
	tasks := append(view.OnCPU(cand.CPU), cand)
	var periodic []Contract
	for _, c := range tasks {
		if c.Period > 0 {
			periodic = append(periodic, c)
		}
	}
	// Higher urgency first (lower priority number, then shorter period).
	sort.Slice(periodic, func(i, j int) bool {
		if periodic[i].Priority != periodic[j].Priority {
			return periodic[i].Priority < periodic[j].Priority
		}
		return periodic[i].Period < periodic[j].Period
	})
	for i, c := range periodic {
		r, ok := responseTime(c, periodic[:i])
		if !ok || r > c.Period {
			return deny("task %s response %v exceeds period %v", c.Name, r, c.Period)
		}
	}
	return admit("all %d periodic tasks schedulable on cpu%d", len(periodic), cand.CPU)
}

// responseTime iterates R = C + Σ ceil(R/Tj)·Cj over the strictly
// higher-priority set hp.
func responseTime(c Contract, hp []Contract) (time.Duration, bool) {
	cost := c.Cost()
	if cost <= 0 {
		return 0, true
	}
	r := cost
	for iter := 0; iter < 1000; iter++ {
		next := cost
		for _, h := range hp {
			hc := h.Cost()
			if hc <= 0 || h.Period <= 0 {
				continue
			}
			n := time.Duration(math.Ceil(float64(r) / float64(h.Period)))
			next += n * hc
		}
		if next == r {
			return r, true
		}
		if next > c.Period*64 { // diverging: unschedulable
			return next, false
		}
		r = next
	}
	return r, false
}

// EDF admits while total density on the candidate's CPU stays at or below
// one — the exact bound for earliest-deadline-first with implicit
// deadlines, included as an alternative policy the framework can be
// extended with (§1).
type EDF struct{}

// Name implements Resolver.
func (EDF) Name() string { return "edf" }

// Admit implements Resolver.
func (EDF) Admit(view View, cand Contract) Decision {
	sum := cand.CPUUsage + view.Load(cand.CPU)
	const eps = 1e-9
	if sum > 1+eps {
		return deny("cpu%d density %.3f exceeds 1", cand.CPU, sum)
	}
	return admit("cpu%d density %.3f ≤ 1", cand.CPU, sum)
}

// Chain consults resolvers in order; everyone must admit, mirroring the
// DRCR consulting its internal service and then every customized service
// (§4.3: "when both services return positive results").
type Chain []Resolver

// Name implements Resolver.
func (ch Chain) Name() string {
	names := make([]string, len(ch))
	for i, r := range ch {
		names[i] = r.Name()
	}
	return "chain(" + joinComma(names) + ")"
}

// Admit implements Resolver.
func (ch Chain) Admit(view View, cand Contract) Decision {
	verdict := ""
	for _, r := range ch {
		d := r.Admit(view, cand)
		if !d.Admit {
			return deny("%s: %s", r.Name(), d.Reason)
		}
		if d.Verdict != "" {
			verdict = d.Verdict
		}
	}
	out := admit("all %d resolvers admitted %s", len(ch), cand.Name)
	out.Verdict = verdict
	return out
}

func joinComma(ss []string) string {
	out := ""
	for i, s := range ss {
		if i > 0 {
			out += ","
		}
		out += s
	}
	return out
}

// Static always answers the same verdict; the paper's simulated
// customized service is Static{Admit: true}.
type Static struct {
	AdmitAll bool
	Label    string
}

// Name implements Resolver.
func (s Static) Name() string {
	if s.Label != "" {
		return s.Label
	}
	if s.AdmitAll {
		return "always-admit"
	}
	return "always-deny"
}

// Admit implements Resolver.
func (s Static) Admit(View, Contract) Decision {
	if s.AdmitAll {
		return admit("static admit")
	}
	return deny("static deny")
}

// Func adapts a plain function to Resolver, for application-specific
// customized resolving services.
type Func struct {
	Label string
	F     func(view View, cand Contract) Decision
}

// Name implements Resolver.
func (f Func) Name() string { return f.Label }

// Admit implements Resolver.
func (f Func) Admit(view View, cand Contract) Decision { return f.F(view, cand) }

// Interface-compliance checks.
var (
	_ Resolver = Utilization{}
	_ Resolver = RMA{}
	_ Resolver = EDF{}
	_ Resolver = Chain(nil)
	_ Resolver = Static{}
	_ Resolver = Func{}
)
