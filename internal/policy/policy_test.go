package policy

import (
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func ct(name string, cpuID int, prio int, usage float64, period time.Duration) Contract {
	return Contract{Name: name, CPU: cpuID, Priority: prio, CPUUsage: usage, Period: period}
}

func TestContractCost(t *testing.T) {
	c := ct("x", 0, 1, 0.25, 100*time.Millisecond)
	if got := c.Cost(); got != 25*time.Millisecond {
		t.Fatalf("Cost = %v", got)
	}
	ap := ct("y", 0, 1, 0.25, 0)
	if ap.Cost() != 0 {
		t.Fatal("aperiodic cost not 0")
	}
}

func TestViewOnCPU(t *testing.T) {
	v := View{NumCPUs: 2, Admitted: []Contract{
		ct("a", 0, 1, 0.1, time.Second),
		ct("b", 1, 1, 0.2, time.Second),
		ct("c", 0, 2, 0.3, time.Second),
	}}
	if got := len(v.OnCPU(0)); got != 2 {
		t.Fatalf("OnCPU(0) = %d", got)
	}
	if got := len(v.OnCPU(1)); got != 1 {
		t.Fatalf("OnCPU(1) = %d", got)
	}
	if got := len(v.OnCPU(5)); got != 0 {
		t.Fatalf("OnCPU(5) = %d", got)
	}
}

func TestUtilizationAdmission(t *testing.T) {
	u := Utilization{} // default bound 1.0
	view := View{NumCPUs: 1, Admitted: []Contract{
		ct("a", 0, 1, 0.5, time.Second),
	}}
	if d := u.Admit(view, ct("b", 0, 2, 0.4, time.Second)); !d.Admit {
		t.Fatalf("0.9 total denied: %s", d.Reason)
	}
	if d := u.Admit(view, ct("b", 0, 2, 0.6, time.Second)); d.Admit {
		t.Fatalf("1.1 total admitted: %s", d.Reason)
	}
	// Exactly at the bound is admitted.
	if d := u.Admit(view, ct("b", 0, 2, 0.5, time.Second)); !d.Admit {
		t.Fatalf("1.0 exact denied: %s", d.Reason)
	}
}

func TestUtilizationPerCPU(t *testing.T) {
	u := Utilization{}
	view := View{NumCPUs: 2, Admitted: []Contract{
		ct("a", 0, 1, 0.9, time.Second),
	}}
	// CPU 1 is free even though CPU 0 is nearly full.
	if d := u.Admit(view, ct("b", 1, 1, 0.9, time.Second)); !d.Admit {
		t.Fatalf("other CPU denied: %s", d.Reason)
	}
	if d := u.Admit(view, ct("b", 0, 1, 0.2, time.Second)); d.Admit {
		t.Fatalf("overloaded CPU admitted: %s", d.Reason)
	}
}

func TestUtilizationCustomBound(t *testing.T) {
	u := Utilization{Bound: 0.69} // RMA-ish guard band
	view := View{NumCPUs: 1}
	if d := u.Admit(view, ct("a", 0, 1, 0.5, time.Second)); !d.Admit {
		t.Fatal("0.5 denied under 0.69 bound")
	}
	if d := u.Admit(view, ct("a", 0, 1, 0.7, time.Second)); d.Admit {
		t.Fatal("0.7 admitted under 0.69 bound")
	}
}

func TestRMAClassicSchedulableSet(t *testing.T) {
	// Liu & Layland classic: three tasks, U = 0.2+0.2+0.2 = 0.6 — trivially
	// schedulable under RMA.
	r := RMA{}
	view := View{NumCPUs: 1, Admitted: []Contract{
		ct("t1", 0, 1, 0.2, 10*time.Millisecond),
		ct("t2", 0, 2, 0.2, 20*time.Millisecond),
	}}
	if d := r.Admit(view, ct("t3", 0, 3, 0.2, 50*time.Millisecond)); !d.Admit {
		t.Fatalf("schedulable set denied: %s", d.Reason)
	}
}

func TestRMAUnschedulableSet(t *testing.T) {
	// Total utilization 1.1 on one CPU can never be schedulable.
	r := RMA{}
	view := View{NumCPUs: 1, Admitted: []Contract{
		ct("t1", 0, 1, 0.6, 10*time.Millisecond),
	}}
	if d := r.Admit(view, ct("t2", 0, 2, 0.5, 14*time.Millisecond)); d.Admit {
		t.Fatalf("overloaded set admitted: %s", d.Reason)
	}
}

func TestRMATightButSchedulable(t *testing.T) {
	// U ≈ 0.83 > Liu-Layland bound for 2 tasks (0.828) but exact analysis
	// proves it schedulable: C1=2,T1=4 (prio 1); C2=2,T2=6 (prio 2).
	// R2 = 2 + ceil(R2/4)*2 → R2 = 6 ≤ 6.
	r := RMA{}
	view := View{NumCPUs: 1, Admitted: []Contract{
		ct("t1", 0, 1, 0.5, 4*time.Millisecond),
	}}
	d := r.Admit(view, ct("t2", 0, 2, 2.0/6.0, 6*time.Millisecond))
	if !d.Admit {
		t.Fatalf("exact-analysis schedulable set denied: %s", d.Reason)
	}
}

func TestRMARespectsDeclaredPriorityNotRate(t *testing.T) {
	// Priority inversion declared on purpose: long-period task has the
	// higher priority. C_long=5,T_long=10 at prio 1; C_short=2,T_short=4 at
	// prio 2. R_short = 2 + 5 = 7 > 4 → unschedulable with these
	// priorities (rate-monotonic assignment would have worked).
	r := RMA{}
	view := View{NumCPUs: 1, Admitted: []Contract{
		ct("long", 0, 1, 0.5, 10*time.Millisecond),
	}}
	if d := r.Admit(view, ct("short", 0, 2, 0.5, 4*time.Millisecond)); d.Admit {
		t.Fatalf("declared-priority inversion admitted: %s", d.Reason)
	}
}

func TestRMAIgnoresAperiodicAndOtherCPUs(t *testing.T) {
	r := RMA{}
	view := View{NumCPUs: 2, Admitted: []Contract{
		ct("ap", 0, 0, 0, 0),                        // aperiodic: no cost
		ct("other", 1, 0, 0.9, 10*time.Millisecond), // other CPU
	}}
	if d := r.Admit(view, ct("t", 0, 1, 0.9, 10*time.Millisecond)); !d.Admit {
		t.Fatalf("denied: %s", d.Reason)
	}
}

func TestEDFDensityBound(t *testing.T) {
	e := EDF{}
	view := View{NumCPUs: 1, Admitted: []Contract{
		ct("a", 0, 1, 0.6, 10*time.Millisecond),
	}}
	// EDF admits up to density exactly 1 (where RMA's fixed priorities may
	// fail).
	if d := e.Admit(view, ct("b", 0, 2, 0.4, 7*time.Millisecond)); !d.Admit {
		t.Fatalf("density 1.0 denied: %s", d.Reason)
	}
	if d := e.Admit(view, ct("b", 0, 2, 0.41, 7*time.Millisecond)); d.Admit {
		t.Fatalf("density 1.01 admitted: %s", d.Reason)
	}
}

func TestEDFAdmitsWhereRMADenies(t *testing.T) {
	// U = 1.0 with fixed priorities fails exact RMA analysis here, but EDF
	// admits: the crossover the resolver ablation bench demonstrates.
	view := View{NumCPUs: 1, Admitted: []Contract{
		ct("t1", 0, 1, 0.5, 4*time.Millisecond),
	}}
	cand := ct("t2", 0, 2, 0.5, 6*time.Millisecond)
	if d := (RMA{}).Admit(view, cand); d.Admit {
		t.Fatalf("RMA admitted density-1.0 set: %s", d.Reason)
	}
	if d := (EDF{}).Admit(view, cand); !d.Admit {
		t.Fatalf("EDF denied density-1.0 set: %s", d.Reason)
	}
}

func TestChain(t *testing.T) {
	view := View{NumCPUs: 1}
	cand := ct("c", 0, 1, 0.5, time.Second)
	ok := Chain{Utilization{}, Static{AdmitAll: true}}
	if d := ok.Admit(view, cand); !d.Admit {
		t.Fatalf("chain denied: %s", d.Reason)
	}
	mixed := Chain{Utilization{}, Static{AdmitAll: false}}
	d := mixed.Admit(view, cand)
	if d.Admit {
		t.Fatal("chain with denier admitted")
	}
	if !strings.Contains(d.Reason, "always-deny") {
		t.Fatalf("reason %q does not name the denier", d.Reason)
	}
	if !strings.Contains(ok.Name(), "utilization") {
		t.Fatalf("chain name = %q", ok.Name())
	}
}

func TestStaticAndFunc(t *testing.T) {
	if !(Static{AdmitAll: true}).Admit(View{}, Contract{}).Admit {
		t.Fatal("static admit broken")
	}
	if (Static{}).Admit(View{}, Contract{}).Admit {
		t.Fatal("static deny broken")
	}
	if (Static{Label: "custom"}).Name() != "custom" {
		t.Fatal("label ignored")
	}
	f := Func{Label: "odd-only", F: func(v View, c Contract) Decision {
		if c.Priority%2 == 1 {
			return Decision{Admit: true}
		}
		return Decision{Admit: false, Reason: "even priority"}
	}}
	if !f.Admit(View{}, ct("a", 0, 1, 0, 0)).Admit {
		t.Fatal("func admit broken")
	}
	if f.Admit(View{}, ct("a", 0, 2, 0, 0)).Admit {
		t.Fatal("func deny broken")
	}
	if f.Name() != "odd-only" {
		t.Fatal("func name broken")
	}
}

// Property: RMA is never more permissive than EDF (fixed-priority
// schedulability implies density ≤ 1 for implicit deadlines), and
// utilization-1.0 equals EDF on identical inputs.
func TestResolverDominanceProperty(t *testing.T) {
	prop := func(us [4]uint8, ps [4]uint8) bool {
		view := View{NumCPUs: 1}
		var cands []Contract
		for i := 0; i < 4; i++ {
			u := float64(us[i]%60) / 100 // 0..0.59
			period := time.Duration(1+ps[i]%20) * time.Millisecond
			cands = append(cands, ct(string(rune('a'+i)), 0, i, u, period))
		}
		// Dominance must hold pointwise on a shared view: grow the view
		// only with contracts both policies accept.
		for _, c := range cands {
			rmaOK := RMA{}.Admit(view, c).Admit
			edfOK := EDF{}.Admit(view, c).Admit
			if rmaOK && !edfOK {
				return false // FP-schedulable implies density ≤ 1
			}
			if rmaOK && edfOK {
				view.Admitted = append(view.Admitted, c)
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
