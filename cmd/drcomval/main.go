// Command drcomval validates DRCom descriptor files: the design-time half
// of the paper's contract checking. Component documents are parsed and
// validated individually, then cross-checked for duplicate names and
// port compatibility; application documents (the ADL extension) are
// validated against the component descriptors given alongside them.
//
// Usage:
//
//	drcomval file.xml [file2.xml ...]
//
// Files whose root element is <application> are treated as architecture
// descriptions; everything else must be a <component> descriptor. Exit
// status is 0 when everything is valid, 1 otherwise.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/adl"
	"repro/internal/descriptor"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: drcomval file.xml [file2.xml ...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}
	ok := true
	var comps []*descriptor.Component
	type appFile struct {
		path string
		app  *adl.Application
	}
	var apps []appFile
	seen := map[string]string{}
	for _, path := range flag.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", path, err)
			ok = false
			continue
		}
		src := string(data)
		if isApplication(src) {
			app, err := adl.Parse(src)
			if err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", path, err)
				ok = false
				continue
			}
			apps = append(apps, appFile{path: path, app: app})
			continue
		}
		c, err := descriptor.Parse(src)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", path, err)
			ok = false
			continue
		}
		if prev, dup := seen[c.Name]; dup {
			fmt.Fprintf(os.Stderr, "%s: component name %q already used by %s\n", path, c.Name, prev)
			ok = false
			continue
		}
		seen[c.Name] = path
		comps = append(comps, c)
		fmt.Printf("%s: ok — component %q (%s, cpu %d, priority %d, budget %.0f%%)\n",
			path, c.Name, c.Kind, c.CPU(), c.Priority(), c.CPUUsage*100)
	}
	// Cross-component check: every inport should have at least one
	// compatible outport in the validated set (a warning, not an error —
	// providers may come from other deployments).
	for _, c := range comps {
		for _, in := range c.InPorts {
			if !hasProvider(comps, c.Name, in) {
				fmt.Printf("warning: %s inport %q has no compatible outport in this set\n", c.Name, in.Name)
			}
		}
	}
	// Application documents are checked against the component set.
	byName := map[string]*descriptor.Component{}
	for _, c := range comps {
		byName[c.Name] = c
	}
	for _, af := range apps {
		problems := adl.Validate(af.app, byName)
		fatal := false
		for _, p := range problems {
			level := "warning"
			if p.Fatal {
				level = "error"
				fatal = true
			}
			fmt.Fprintf(os.Stderr, "%s: %s: %s\n", af.path, level, p.Message)
		}
		if fatal {
			ok = false
			continue
		}
		order, err := adl.ActivationOrder(af.app, byName)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", af.path, err)
			ok = false
			continue
		}
		fmt.Printf("%s: ok — application %q, activation order: %s\n",
			af.path, af.app.Name, strings.Join(order, " -> "))
	}
	if !ok {
		os.Exit(1)
	}
}

// isApplication sniffs for an <application> root element.
func isApplication(src string) bool {
	if err := descriptor.Sniff(src); err == nil {
		return false
	}
	_, err := adl.Parse(src)
	return err == nil || strings.Contains(src, "<application")
}

func hasProvider(comps []*descriptor.Component, self string, in descriptor.Port) bool {
	for _, p := range comps {
		if p.Name == self {
			continue
		}
		for _, out := range p.OutPorts {
			if out.CanSatisfy(in) {
				return true
			}
		}
	}
	return false
}
