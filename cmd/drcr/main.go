// Command drcr boots a complete DRCom system from descriptor files,
// runs it for a span of simulated time, and reports what the DRCR did:
// lifecycle events, the final component table, per-task latency rows, and
// the admission view. It is the batch equivalent of the Equinox console
// session the paper's prototype ran in.
//
// Component files deploy individually; at most one <application> file may
// be given, in which case the component files are validated against it
// and deployed in architecture order.
//
// Usage:
//
//	drcr [-cpus N] [-seed S] [-mode light|stress] [-run DUR] [-events] file.xml ...
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	drcom "repro"
	"repro/internal/console"
	"repro/internal/descriptor"
	"repro/internal/metrics"
)

func main() {
	var (
		cpus        = flag.Int("cpus", 2, "simulated processor count")
		seed        = flag.Uint64("seed", 1, "simulation seed")
		mode        = flag.String("mode", "light", "load regime: light or stress")
		runFor      = flag.Duration("run", time.Second, "simulated time to run")
		events      = flag.Bool("events", false, "print the DRCR lifecycle event log")
		interactive = flag.Bool("i", false, "after deployment, read console commands from stdin")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: drcr [flags] descriptor.xml ...\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 && !*interactive {
		flag.Usage()
		os.Exit(2)
	}

	loadMode := drcom.LightLoad
	switch *mode {
	case "light":
	case "stress":
		loadMode = drcom.StressLoad
	default:
		log.Fatalf("unknown mode %q", *mode)
	}

	sys, err := drcom.NewSystem(drcom.Config{NumCPUs: *cpus, Seed: *seed, Mode: loadMode})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	var appSrc, appPath string
	var componentSrcs []string
	for _, path := range flag.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			log.Fatalf("%s: %v", path, err)
		}
		src := string(data)
		if descriptor.Sniff(src) != nil && strings.Contains(src, "<application") {
			if appSrc != "" {
				log.Fatalf("%s: only one application file may be given", path)
			}
			appSrc, appPath = src, path
			continue
		}
		componentSrcs = append(componentSrcs, src)
	}
	if appSrc != "" {
		if err := sys.DeployApplication(appSrc, componentSrcs); err != nil {
			log.Fatalf("%s: %v", appPath, err)
		}
		fmt.Printf("deployed application %s with %d components\n", appPath, len(componentSrcs))
	} else {
		for i, src := range componentSrcs {
			if err := sys.DeployXML(src); err != nil {
				log.Fatalf("%s: %v", flag.Args()[i], err)
			}
			fmt.Printf("deployed %s\n", flag.Args()[i])
		}
	}

	if *interactive {
		fmt.Println("drcr console — type help for commands, quit to exit")
		if err := console.New(sys, os.Stdout).Run(os.Stdin); err != nil {
			log.Fatal(err)
		}
		return
	}

	fmt.Printf("running %v of simulated time in %s mode...\n\n", *runFor, loadMode)
	if err := sys.Run(*runFor); err != nil {
		log.Fatal(err)
	}

	fmt.Println("components:")
	fmt.Printf("  %-8s %-11s %-9s %4s %4s %7s  %s\n", "name", "state", "kind", "cpu", "prio", "budget", "bindings")
	for _, info := range sys.Components() {
		fmt.Printf("  %-8s %-11v %-9s %4d %4d %6.0f%%  %v\n",
			info.Name, info.State, info.Kind, info.CPU, info.Priority, info.CPUUsage*100, info.Bindings)
	}

	fmt.Println("\nadmission view:")
	view := sys.GlobalView()
	for cpuID := 0; cpuID < view.NumCPUs; cpuID++ {
		var sum float64
		for _, c := range view.OnCPU(cpuID) {
			sum += c.CPUUsage
		}
		fmt.Printf("  cpu%d: %d contracts, %.0f%% declared budget\n", cpuID, len(view.OnCPU(cpuID)), sum*100)
	}

	fmt.Println("\nper-task scheduling latency (ns):")
	var rows []metrics.Row
	for _, task := range sys.Kernel().Tasks() {
		rows = append(rows, task.Stats().Latency)
	}
	fmt.Print(metrics.FormatTable("", rows))

	if *events {
		fmt.Println("\nlifecycle events:")
		for _, ev := range sys.Events() {
			fmt.Printf("  %s\n", ev)
		}
	}
}
