// Command latbench regenerates the paper's evaluation: Table 1 (the
// latency test in light and stress mode, for the pure-RTAI and the
// declarative hybrid implementation), the latency distribution
// histograms behind it, and the three design ablations documented in
// DESIGN.md.
//
// Usage:
//
//	latbench [-samples N] [-seed S] [-workers W] [-table1] [-hist]
//	         [-ablations] [-faults] [-benchjson FILE]
//	         [-churn] [-churnjson FILE] [-churnsizes N,N,...] [-churnsteps N]
//	         [-obs] [-obsjson FILE] [-obssim N]
//	         [-obs2] [-obs2json FILE] [-obs2sim N]
//	         [-degrade] [-degradejson FILE]
//	         [-predict] [-predictjson FILE]
//	         [-shards] [-shardjson FILE] [-shardsim N]
//	         [-cluster] [-clusterjson FILE] [-clustersim N]
//	         [-plan] [-planjson FILE] [-plansizes N,N,...]
//	         [-all]
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/rtos"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	var (
		samples    = flag.Int("samples", 60000, "latency samples per configuration")
		seed       = flag.Uint64("seed", 1, "simulation seed")
		table1     = flag.Bool("table1", false, "run the Table 1 latency test")
		hist       = flag.Bool("hist", false, "render latency distribution histograms")
		ablations  = flag.Bool("ablations", false, "run the design ablations")
		gantt      = flag.Bool("gantt", false, "render a scheduler Gantt chart of the §4.2 pair")
		dump       = flag.String("dump", "", "write raw HRC-light latency samples (ns) to this CSV file")
		workers    = flag.Int("workers", 0, "goroutine pool size for parallel runs (0 = NumCPU)")
		benchjson  = flag.String("benchjson", "", "measure hot-path and Monte-Carlo perf, write JSON report to this file")
		faults     = flag.Bool("faults", false, "run the fault-injection ablation (contract guard on/off)")
		churn      = flag.Bool("churn", false, "run the resolve-churn benchmark (full-sweep vs worklist engine)")
		churnjson  = flag.String("churnjson", "", "write the resolve-churn JSON report to this file (implies -churn)")
		churnsizes = flag.String("churnsizes", "100,1000,5000", "comma-separated component-population sizes for -churn")
		churnsteps = flag.Int("churnsteps", 0, "storm steps per churn size (0 = auto-scale per size)")
		obsRun     = flag.Bool("obs", false, "run the observability-overhead benchmark (per sampling level)")
		obsjson    = flag.String("obsjson", "", "write the observability JSON report to this file (implies -obs)")
		obssim     = flag.Int("obssim", 0, "simulated seconds per obs hot-path run (0 = default 5)")
		obs2Run    = flag.Bool("obs2", false, "run the federated-observability benchmark (per-shard emission, stitched digest)")
		obs2json   = flag.String("obs2json", "", "merge the obs2 section into this obs JSON report file (implies -obs2)")
		obs2sim    = flag.Int("obs2sim", 0, "simulated milliseconds per obs2 campaign run (0 = default 600)")
		degrade    = flag.Bool("degrade", false, "run the graceful-degradation campaign (mode ladder vs binary baseline)")
		degradeOut = flag.String("degradejson", "", "write the degradation JSON report to this file (implies -degrade)")
		predictRun = flag.Bool("predict", false, "run the predictive-admission ablation (reactive vs forecasting guard)")
		predictOut = flag.String("predictjson", "", "write the predictive-admission JSON report to this file (implies -predict)")
		shardsRun  = flag.Bool("shards", false, "run the shard-scaling sweep (events/sec per shard count)")
		shardjson  = flag.String("shardjson", "", "write the shard-scaling JSON report to this file (implies -shards)")
		shardsim   = flag.Int("shardsim", 0, "simulated seconds per shard-sweep rung (0 = default 10)")
		clusterRun = flag.Bool("cluster", false, "run the federated cluster-scaling sweep (nodes × partition rates)")
		clusterOut = flag.String("clusterjson", "", "write the cluster-scaling JSON report to this file (implies -cluster)")
		clustersim = flag.Int("clustersim", 0, "simulated milliseconds per cluster-sweep rung (0 = default 500)")
		planRun    = flag.Bool("plan", false, "run the whole-bundle deploy benchmark (event path vs compiled plan)")
		planjson   = flag.String("planjson", "", "write the plan-deploy JSON report to this file (implies -plan)")
		plansizes  = flag.String("plansizes", "100,1000,5000", "comma-separated component-population sizes for -plan")
		all        = flag.Bool("all", false, "run everything")
	)
	flag.Parse()
	if runtime.NumCPU() == 1 {
		fmt.Fprintln(os.Stderr, "WARNING: single-core host (num_cpu=1): wall-clock rows land in the JSON"+
			" reports as single_core_host=true and must not be compared against multi-core baselines"+
			" (see the BENCH_shard.json caveat in README.md)")
	}
	perf := *benchjson != ""
	if *churnjson != "" {
		*churn = true
	}
	if *obsjson != "" {
		*obsRun = true
	}
	if *obs2json != "" {
		*obs2Run = true
	}
	if *degradeOut != "" {
		*degrade = true
	}
	if *predictOut != "" {
		*predictRun = true
	}
	if *shardjson != "" {
		*shardsRun = true
	}
	if *clusterOut != "" {
		*clusterRun = true
	}
	if *planjson != "" {
		*planRun = true
	}
	if *all {
		*table1, *hist, *ablations, *gantt, *faults, *churn, *obsRun, *obs2Run, *degrade, *predictRun, *shardsRun, *clusterRun, *planRun = true, true, true, true, true, true, true, true, true, true, true, true, true
		perf = true // hot-path measurements print even without a JSON path
	}
	if !*table1 && !*hist && !*ablations && !*gantt && !*faults && !*churn && !*obsRun && !*obs2Run && !*degrade && !*predictRun && !*shardsRun && !*clusterRun && !*planRun && *dump == "" && !perf {
		*table1 = true // default action
	}

	if *table1 {
		runTable1(*samples, *seed, *workers)
	}
	if perf {
		runBenchJSON(*benchjson, *seed, *workers)
	}
	if *churn {
		runChurn(*churnjson, *churnsizes, *churnsteps, *seed)
	}
	if *obsRun {
		runObsJSON(*obsjson, *obssim, *seed)
	}
	if *obs2Run {
		runObs2JSON(*obs2json, *obs2sim, *seed)
	}
	if *degrade {
		runDegradeJSON(*degradeOut, *seed)
	}
	if *predictRun {
		runPredictJSON(*predictOut, *seed)
	}
	if *shardsRun {
		runShardJSON(*shardjson, *shardsim)
	}
	if *clusterRun {
		runClusterJSON(*clusterOut, *clustersim)
	}
	if *planRun {
		runPlanJSON(*planjson, *plansizes, *seed)
	}
	if *hist {
		runHistograms(*samples, *seed)
	}
	if *gantt {
		runGantt(*seed)
	}
	if *dump != "" {
		runDump(*dump, *samples, *seed)
	}
	if *faults {
		runFaults(*seed)
	}
	if *ablations {
		runAblations(*seed)
	}
}

// runGantt traces 12 ms of the §4.2 pair plus an equal-priority rival to
// show preemption, waiting, and round-robin in one picture.
func runGantt(seed uint64) {
	k := rtos.NewKernel(rtos.Config{Seed: seed})
	tr := k.StartTrace(0)
	specs := []rtos.TaskSpec{
		{Name: "calc", Type: rtos.Periodic, Period: time.Millisecond, Priority: 1, ExecTime: 300 * time.Microsecond},
		{Name: "disp", Type: rtos.Periodic, Period: 4 * time.Millisecond, Priority: 2, ExecTime: 900 * time.Microsecond},
		{Name: "peer", Type: rtos.Periodic, Period: 4 * time.Millisecond, Priority: 2, ExecTime: 900 * time.Microsecond},
	}
	for _, spec := range specs {
		task, err := k.CreateTask(spec)
		if err != nil {
			log.Fatal(err)
		}
		if err := task.Start(); err != nil {
			log.Fatal(err)
		}
	}
	if err := k.Run(12 * time.Millisecond); err != nil {
		log.Fatal(err)
	}
	fmt.Println("Scheduler trace (1 kHz calc preempting two equal-priority 4 ms tasks):")
	fmt.Println(tr.Gantt(0, sim.Time(12*time.Millisecond), 96))
}

// runDump writes raw latency samples for external plotting.
func runDump(path string, samples int, seed uint64) {
	res, err := workload.RunLatency(workload.LatencyConfig{Hybrid: true, Samples: samples, Seed: seed})
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
	}()
	w := bufio.NewWriter(f)
	fmt.Fprintln(w, "sample,latency_ns")
	for i, v := range res.Samples {
		fmt.Fprintf(w, "%d,%d\n", i, v)
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %d samples to %s\n", len(res.Samples), path)
}

func runTable1(samples int, seed uint64, workers int) {
	fmt.Printf("Running Table 1 with %d samples per configuration (seed %d)...\n\n", samples, seed)
	out, rows, err := bench.Table1Parallel(samples, seed, workers)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(out)
	fmt.Println("Side by side with the published Table 1 (ns):")
	fmt.Println(bench.CompareWithPaper(rows))
}

// runBenchJSON measures the simulation hot path plus the parallel
// Monte-Carlo harness. With a path it writes the machine-readable
// BENCH_sim.json so successive revisions carry a comparable performance
// trajectory; with an empty path (e.g. under -all) it only prints.
func runBenchJSON(path string, seed uint64, workers int) {
	rep, err := bench.MeasurePerf(bench.PerfConfig{BaseSeed: seed, Workers: workers})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(bench.FormatPerf(rep))
	fmt.Printf("kernel hot path: %.0f events/s, %.1f ns/event, %.4f allocs/event\n",
		rep.Kernel.EventsPerSec, rep.Kernel.NSPerEvent, rep.Kernel.AllocsPerEvent)
	if path == "" {
		return
	}
	data, err := rep.Encode()
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", path)
}

// runChurn replays the seeded lifecycle storm on the reference full-sweep
// resolve engine and the incremental worklist engine at each population
// size. With a path it writes the machine-readable BENCH_resolve.json so
// successive revisions carry a comparable resolve-throughput trajectory.
func runChurn(path, sizesCSV string, steps int, seed uint64) {
	var sizes []int
	for _, f := range strings.Split(sizesCSV, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		n, err := strconv.Atoi(f)
		if err != nil || n <= 0 {
			log.Fatalf("-churnsizes: bad size %q", f)
		}
		sizes = append(sizes, n)
	}
	rep, err := bench.MeasureChurn(bench.ChurnConfig{
		Sizes: sizes, Steps: steps, Seed: int64(seed),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(bench.FormatChurn(rep))
	for _, row := range rep.Rows {
		if !row.TraceMatch || !row.StateMatch {
			log.Fatalf("churn engines diverged at N=%d", row.Components)
		}
	}
	if path == "" {
		return
	}
	data, err := rep.Encode()
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", path)
}

// runObsJSON measures the observability overhead per sampling level and
// pins the seeded campaign span digest. With a path it writes the
// machine-readable BENCH_obs.json, then reads it back and validates it —
// the CI smoke depends on the written file being well-formed.
func runObsJSON(path string, simSeconds int, seed uint64) {
	rep, err := bench.MeasureObs(bench.ObsConfig{SimSeconds: simSeconds, Seed: seed})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(bench.FormatObs(rep))
	if err := rep.Validate(); err != nil {
		log.Fatal(err)
	}
	if path == "" {
		return
	}
	data, err := rep.Encode()
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		log.Fatal(err)
	}
	written, err := os.ReadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	var round bench.ObsReport
	if err := json.Unmarshal(written, &round); err != nil {
		log.Fatalf("%s is not valid JSON: %v", path, err)
	}
	if err := round.Validate(); err != nil {
		log.Fatalf("%s failed validation after round trip: %v", path, err)
	}
	fmt.Printf("wrote %s (validated)\n", path)
}

// runObs2JSON runs the federated-observability benchmark: per-shard
// emission vs the funnel bridge at Full level, latency-histogram
// quantiles, and the 8-node stitched cross-node digest. With a path it
// merges the obs2 section into that obs report file (the committed
// BENCH_obs.json; under -all, runObsJSON has just rewritten it), reads
// it back and validates it. A missing or unreadable report file is
// regenerated from scratch first so -obs2json stands alone.
func runObs2JSON(path string, simMillis int, seed uint64) {
	cfg := bench.Obs2Config{Seed: seed}
	if simMillis > 0 {
		cfg.RunFor = time.Duration(simMillis) * time.Millisecond
	}
	rep, err := bench.MeasureObs2(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(bench.FormatObs2(rep))
	if err := rep.Validate(); err != nil {
		log.Fatal(err)
	}
	if path == "" {
		return
	}
	var outer bench.ObsReport
	existing, err := os.ReadFile(path)
	if err == nil {
		err = json.Unmarshal(existing, &outer)
	}
	if err != nil {
		fmt.Printf("%s missing or unreadable; regenerating the obs report first\n", path)
		outer, err = bench.MeasureObs(bench.ObsConfig{Seed: seed})
		if err != nil {
			log.Fatal(err)
		}
	}
	outer.Obs2 = &rep
	if err := outer.Validate(); err != nil {
		log.Fatal(err)
	}
	data, err := outer.Encode()
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		log.Fatal(err)
	}
	written, err := os.ReadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	var round bench.ObsReport
	if err := json.Unmarshal(written, &round); err != nil {
		log.Fatalf("%s is not valid JSON: %v", path, err)
	}
	if err := round.Validate(); err != nil {
		log.Fatalf("%s failed validation after round trip: %v", path, err)
	}
	if round.Obs2 == nil {
		log.Fatalf("%s lost the obs2 section in the round trip", path)
	}
	fmt.Printf("wrote %s (obs2 section merged, validated)\n", path)
}

// runDegradeJSON runs the degradation campaign with and without the mode
// ladder. With a path it writes the machine-readable BENCH_degrade.json,
// then reads it back and validates it — the CI smoke depends on the
// written file being well-formed.
func runDegradeJSON(path string, seed uint64) {
	rep, err := bench.MeasureDegrade(bench.DegradeBenchConfig{Seed: seed})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(bench.FormatDegrade(rep))
	if err := rep.Validate(); err != nil {
		log.Fatal(err)
	}
	if path == "" {
		return
	}
	data, err := rep.Encode()
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		log.Fatal(err)
	}
	written, err := os.ReadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	var round bench.DegradeReport
	if err := json.Unmarshal(written, &round); err != nil {
		log.Fatalf("%s is not valid JSON: %v", path, err)
	}
	if err := round.Validate(); err != nil {
		log.Fatalf("%s failed validation after round trip: %v", path, err)
	}
	fmt.Printf("wrote %s (validated)\n", path)
}

// runPredictJSON runs the execution-drift campaign under the reactive
// and the forecasting guard. With a path it writes the machine-readable
// BENCH_predict.json, then reads it back and validates it — the CI smoke
// depends on the written file being well-formed.
func runPredictJSON(path string, seed uint64) {
	rep, err := bench.MeasurePredict(bench.PredictBenchConfig{Seed: seed})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(bench.FormatPredict(rep))
	if err := rep.Validate(); err != nil {
		log.Fatal(err)
	}
	if path == "" {
		return
	}
	data, err := rep.Encode()
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		log.Fatal(err)
	}
	written, err := os.ReadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	var round bench.PredictReport
	if err := json.Unmarshal(written, &round); err != nil {
		log.Fatalf("%s is not valid JSON: %v", path, err)
	}
	if err := round.Validate(); err != nil {
		log.Fatalf("%s failed validation after round trip: %v", path, err)
	}
	fmt.Printf("wrote %s (validated)\n", path)
}

// runShardJSON runs the shard-scaling sweep over the shard ladder. With
// a path it writes the machine-readable BENCH_shard.json; the speedup
// column is only meaningful on a machine with real cores to spare
// (num_cpu in the report records what the sweep had available).
func runShardJSON(path string, simSeconds int) {
	rep, err := bench.MeasureShardScaling(bench.ShardConfig{SimSeconds: simSeconds})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(bench.FormatShard(rep))
	if path == "" {
		return
	}
	data, err := rep.Encode()
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		log.Fatal(err)
	}
	written, err := os.ReadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	var round bench.ShardReport
	if err := json.Unmarshal(written, &round); err != nil {
		log.Fatalf("%s is not valid JSON: %v", path, err)
	}
	fmt.Printf("wrote %s\n", path)
}

// runClusterJSON runs the federated cluster-scaling sweep: node counts
// 1–16 crossed with partition rates, each rung a live producer→consumer
// mesh whose wirings deliberately cross the simulated network. With a
// path it writes the machine-readable BENCH_cluster.json.
func runClusterJSON(path string, simMillis int) {
	rep, err := bench.MeasureCluster(bench.ClusterBenchConfig{SimMillis: simMillis})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(bench.FormatCluster(rep))
	if path == "" {
		return
	}
	data, err := rep.Encode()
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		log.Fatal(err)
	}
	written, err := os.ReadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	var round bench.ClusterReport
	if err := json.Unmarshal(written, &round); err != nil {
		log.Fatalf("%s is not valid JSON: %v", path, err)
	}
	fmt.Printf("wrote %s\n", path)
}

// runPlanJSON runs the whole-bundle deploy comparison: per-descriptor
// event-path deploys versus one compiled composition plan (cold and
// cache-warm), with the plan applies differential-checked against the
// batched event path. With a path it writes the machine-readable
// BENCH_plan.json, then reads it back and validates it — the CI smoke
// depends on the written file being well-formed.
func runPlanJSON(path, sizesCSV string, seed uint64) {
	var sizes []int
	for _, f := range strings.Split(sizesCSV, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		n, err := strconv.Atoi(f)
		if err != nil || n <= 0 {
			log.Fatalf("-plansizes: bad size %q", f)
		}
		sizes = append(sizes, n)
	}
	rep, err := bench.MeasurePlan(bench.PlanConfig{Sizes: sizes, Seed: int64(seed)})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(bench.FormatPlan(rep))
	if err := rep.Validate(); err != nil {
		log.Fatal(err)
	}
	if path == "" {
		return
	}
	data, err := rep.Encode()
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		log.Fatal(err)
	}
	written, err := os.ReadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	var round bench.PlanReport
	if err := json.Unmarshal(written, &round); err != nil {
		log.Fatalf("%s is not valid JSON: %v", path, err)
	}
	if err := round.Validate(); err != nil {
		log.Fatalf("%s failed validation after round trip: %v", path, err)
	}
	fmt.Printf("wrote %s (validated)\n", path)
}

// runFaults renders Ablation E: the standard fault campaign with the
// contract guard enforcing versus absent.
func runFaults(seed uint64) {
	rows, err := bench.AblationFaults(seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(bench.FormatFaults(rows))
}

func runHistograms(samples int, seed uint64) {
	if samples > 20000 {
		samples = 20000 // histograms do not need the full run
	}
	for _, cfg := range []workload.LatencyConfig{
		{Hybrid: true, Mode: rtos.LightLoad, Samples: samples, Seed: seed},
		{Hybrid: true, Mode: rtos.StressLoad, Samples: samples, Seed: seed},
	} {
		out, err := bench.Histogram(cfg, 40)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(out)
	}
}

func runAblations(seed uint64) {
	fmt.Println("Running ablations...")
	a, err := bench.AblationIntraComm(seed, 200)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(bench.FormatIntraComm(a))

	b, err := bench.AblationAdmission(seed, 5*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(bench.FormatAdmission(b))

	c, err := bench.AblationResolvers()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(bench.FormatResolvers(c))

	d, err := bench.AblationSchedPolicy(seed, 5*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(bench.FormatSchedPolicy(d))
	os.Exit(0)
}
