// Benchmarks regenerating every table and figure of the paper's
// evaluation (§4), plus the ablations and scale microbenches from
// DESIGN.md. Latency benchmarks report the simulated statistics through
// b.ReportMetric (avg-ns, avedev-ns, min-ns, max-ns), so `go test
// -bench=Table1` prints the Table 1 cells; wall-clock ns/op measures the
// cost of the simulation itself, not the latency being simulated.
package drcom

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/descriptor"
	"repro/internal/ldap"
	"repro/internal/osgi"
	"repro/internal/policy"
	"repro/internal/rtos"
	"repro/internal/workload"
)

const benchSamples = 20000

func reportRow(b *testing.B, res workload.LatencyResult) {
	b.ReportMetric(res.Row.Average, "avg-ns")
	b.ReportMetric(res.Row.AveDev, "avedev-ns")
	b.ReportMetric(float64(res.Row.Min), "min-ns")
	b.ReportMetric(float64(res.Row.Max), "max-ns")
}

func benchLatency(b *testing.B, cfg workload.LatencyConfig) {
	b.Helper()
	var last workload.LatencyResult
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i + 1)
		cfg.Samples = benchSamples
		res, err := workload.RunLatency(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	reportRow(b, last)
}

// Table 1 — the paper's latency test, one benchmark per row.

func BenchmarkTable1_HRC_Light(b *testing.B) {
	benchLatency(b, workload.LatencyConfig{Hybrid: true, Mode: rtos.LightLoad})
}

func BenchmarkTable1_PureRTAI_Light(b *testing.B) {
	benchLatency(b, workload.LatencyConfig{Hybrid: false, Mode: rtos.LightLoad})
}

func BenchmarkTable1_HRC_Stress(b *testing.B) {
	benchLatency(b, workload.LatencyConfig{Hybrid: true, Mode: rtos.StressLoad})
}

func BenchmarkTable1_PureRTAI_Stress(b *testing.B) {
	benchLatency(b, workload.LatencyConfig{Hybrid: false, Mode: rtos.StressLoad})
}

// §4.3 — dynamicity: the cost of the DRCR's reaction to change.

// BenchmarkDynamicity_DeployActivate measures deploy → resolve → admit →
// activate for one component with a satisfied dependency.
func BenchmarkDynamicity_DeployActivate(b *testing.B) {
	sys, err := NewSystem(Config{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	defer sys.Close()
	if err := sys.DeployXML(workload.CalcXML); err != nil {
		b.Fatal(err)
	}
	desc, err := descriptor.Parse(workload.DisplayXML)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sys.DRCR().Deploy(desc); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if err := sys.Remove("disp"); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
}

// BenchmarkDynamicity_Cascade measures provider removal plus the cascade
// deactivation of its dependant and the re-resolution pass.
func BenchmarkDynamicity_Cascade(b *testing.B) {
	sys, err := NewSystem(Config{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	defer sys.Close()
	calcDesc, err := descriptor.Parse(workload.CalcXML)
	if err != nil {
		b.Fatal(err)
	}
	if err := sys.DeployXML(workload.DisplayXML); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		if err := sys.DRCR().Deploy(calcDesc); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if err := sys.Remove("calc"); err != nil { // cascades disp down
			b.Fatal(err)
		}
	}
}

// Figure 1 — lifecycle transitions driven through the external API.
func BenchmarkFigure1_EnableDisable(b *testing.B) {
	sys, err := NewSystem(Config{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	defer sys.Close()
	if err := sys.DeployXML(workload.CalcXML); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sys.Disable("calc"); err != nil {
			b.Fatal(err)
		}
		if err := sys.Enable("calc"); err != nil {
			b.Fatal(err)
		}
	}
}

// Figure 2 — descriptor parsing and validation.
func BenchmarkFigure2_ParseDescriptor(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := descriptor.Parse(workload.CalcXML); err != nil {
			b.Fatal(err)
		}
	}
}

// Figure 3 — the split-container bridge: one asynchronous management
// command (send, RT-side poll, management-side readback).
func BenchmarkFigure3_HRCBridgeCommand(b *testing.B) {
	sys, err := NewSystem(Config{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	defer sys.Close()
	if err := sys.DeployXML(workload.CalcXML); err != nil {
		b.Fatal(err)
	}
	mgmt, ok := sys.Management("calc")
	if !ok {
		b.Fatal("no management service")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := mgmt.SetProperty("p", "v"); err != nil {
			b.Fatal(err)
		}
		if err := sys.Run(2 * time.Millisecond); err != nil { // RT side polls
			b.Fatal(err)
		}
		if _, ok := mgmt.Property("p"); !ok {
			b.Fatal("property lost")
		}
	}
}

// Ablation A — §3.2 intra-component communication design.
func BenchmarkAblation_IntraCommSyncVsAsync(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.AblationIntraComm(uint64(i+1), 100)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(float64(rows[0].Latency.Max), "async-max-ns")
			b.ReportMetric(float64(rows[1].Latency.Max), "sync-max-ns")
		}
	}
}

// Ablation B — central admission versus none.
func BenchmarkAblation_AdmissionOnOff(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.AblationAdmission(uint64(i+1), 2*time.Second)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(float64(rows[0].Misses), "enforced-misses")
			b.ReportMetric(float64(rows[1].Misses), "disabled-misses")
		}
	}
}

// Ablation C — resolver policy comparison on the crossover set.
func BenchmarkAblation_ResolverPolicies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.AblationResolvers()
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, r := range rows {
				b.ReportMetric(float64(r.Admitted), r.Policy+"-admitted")
			}
		}
	}
}

// Ablation D — dispatcher discipline (FP vs EDF) on the crossover set.
func BenchmarkAblation_SchedPolicyFPvsEDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.AblationSchedPolicy(uint64(i+1), 2*time.Second)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(float64(rows[0].Misses+rows[0].Skips), "fp-violations")
			b.ReportMetric(float64(rows[1].Misses+rows[1].Skips), "edf-violations")
		}
	}
}

// Scale microbenches.

func BenchmarkRegistryLookup(b *testing.B) {
	for _, n := range []int{10, 100, 1000} {
		b.Run(fmt.Sprintf("services-%d", n), func(b *testing.B) {
			fw := osgi.NewFramework()
			for i := 0; i < n; i++ {
				if _, err := fw.RegisterService(
					[]string{"bench.Service"},
					struct{ v int }{i},
					ldap.Properties{"idx": i},
				); err != nil {
					b.Fatal(err)
				}
			}
			filter := ldap.MustParse(fmt.Sprintf("(idx=%d)", n/2))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				refs := fw.ServiceReferences("bench.Service", filter)
				if len(refs) != 1 {
					b.Fatal("lookup failed")
				}
			}
		})
	}
}

func BenchmarkResolveScale(b *testing.B) {
	for _, n := range []int{10, 50, 100} {
		b.Run(fmt.Sprintf("components-%d", n), func(b *testing.B) {
			fw := osgi.NewFramework()
			k := rtos.NewKernel(rtos.Config{Seed: 1})
			d, err := core.New(fw, k, core.Options{Internal: policy.Static{AdmitAll: true}})
			if err != nil {
				b.Fatal(err)
			}
			defer d.Close()
			comps := make([]*descriptor.Component, n)
			for i := 0; i < n; i++ {
				src := fmt.Sprintf(`<component name="c%03d" type="aperiodic">
				  <implementation bincode="x"/>
				</component>`, i)
				c, err := descriptor.Parse(src)
				if err != nil {
					b.Fatal(err)
				}
				comps[i] = c
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, c := range comps {
					if err := d.Deploy(c); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				for _, c := range comps {
					if err := d.Remove(c.Name); err != nil {
						b.Fatal(err)
					}
				}
				b.StartTimer()
			}
		})
	}
}

func BenchmarkLDAPFilterMatch(b *testing.B) {
	f := ldap.MustParse("(&(objectClass=drcom.Management)(drcom.cpuusage<=0.5)(!(drcom.type=aperiodic)))")
	props := ldap.Properties{
		"objectClass":    []string{"drcom.Management"},
		"drcom.cpuusage": 0.1,
		"drcom.type":     "periodic",
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !f.Matches(props) {
			b.Fatal("no match")
		}
	}
}

// BenchmarkKernelThroughput measures simulated-event throughput: one
// simulated second of a 1 kHz task per iteration.
func BenchmarkKernelThroughput(b *testing.B) {
	k := rtos.NewKernel(rtos.Config{Seed: 1})
	task, err := k.CreateTask(rtos.TaskSpec{
		Name: "tick", Type: rtos.Periodic, Period: time.Millisecond,
		ExecTime: 30 * time.Microsecond,
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := task.Start(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := k.Run(time.Second); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(k.Clock().Fired())/float64(b.N), "events/op")
}
