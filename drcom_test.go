package drcom

import (
	"testing"
	"time"

	"repro/internal/descriptor"
	"repro/internal/rtos"
)

const cameraXML = `<component name="camera" desc="smart camera" type="periodic" cpuusage="0.1">
  <implementation bincode="ua.pats.demo.smartcamera.RTComponent"/>
  <periodictask frequence="100" runoncup="0" priority="2"/>
  <outport name="images" interface="RTAI.SHM" type="Byte" size="400"/>
</component>`

const viewerXML = `<component name="viewer" type="periodic" cpuusage="0.02">
  <implementation bincode="demo.Viewer"/>
  <periodictask frequence="10" runoncup="0" priority="3"/>
  <inport name="images" interface="RTAI.SHM" type="Byte" size="400"/>
</component>`

func TestSystemQuickstart(t *testing.T) {
	sys, err := NewSystem(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if err := sys.DeployXML(cameraXML); err != nil {
		t.Fatal(err)
	}
	info, ok := sys.Component("camera")
	if !ok || info.State != Active {
		t.Fatalf("camera = %+v", info)
	}
	if err := sys.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	mgmt, ok := sys.Management("camera")
	if !ok {
		t.Fatal("no management service")
	}
	if st := mgmt.Status(); st.Jobs < 90 {
		t.Fatalf("camera jobs = %d", st.Jobs)
	}
	if sys.Now() != Time(time.Second) {
		t.Fatalf("Now = %v", sys.Now())
	}
}

func TestSystemDeployBundleAndCascade(t *testing.T) {
	sys, err := NewSystem(Config{NumCPUs: 2, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if _, err := sys.DeployBundle("demo.viewer", "1.0", map[string]string{
		"OSGI-INF/viewer.xml": viewerXML,
	}); err != nil {
		t.Fatal(err)
	}
	if info, _ := sys.Component("viewer"); info.State != Unsatisfied {
		t.Fatalf("viewer = %v", info.State)
	}
	camBundle, err := sys.DeployBundle("demo.camera", "1.0", map[string]string{
		"OSGI-INF/camera.xml": cameraXML,
	})
	if err != nil {
		t.Fatal(err)
	}
	if info, _ := sys.Component("viewer"); info.State != Active {
		t.Fatalf("viewer after camera = %v", info.State)
	}
	if err := camBundle.Stop(); err != nil {
		t.Fatal(err)
	}
	if info, _ := sys.Component("viewer"); info.State != Unsatisfied {
		t.Fatalf("viewer after camera stop = %v", info.State)
	}
	if _, ok := sys.Component("camera"); ok {
		t.Fatal("camera survived bundle stop")
	}
}

func TestSystemDeployBundleValidation(t *testing.T) {
	sys, err := NewSystem(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if _, err := sys.DeployBundle("b", "1.0", nil); err == nil {
		t.Fatal("empty bundle accepted")
	}
	if _, err := sys.DeployBundle("b", "bogus", map[string]string{"x": cameraXML}); err == nil {
		t.Fatal("bad version accepted")
	}
	if _, err := sys.DeployBundle("b", "1.0", map[string]string{"x": "<other/>"}); err == nil {
		t.Fatal("non-DRCom resource accepted")
	}
}

func TestSystemCustomResolver(t *testing.T) {
	sys, err := NewSystem(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	denyCameras := Func{
		Label: "no-cameras",
		F: func(v View, c Contract) Decision {
			if c.Name == "camera" {
				return Decision{Admit: false, Reason: "cameras vetoed"}
			}
			return Decision{Admit: true}
		},
	}
	remove, err := sys.RegisterResolver(denyCameras)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.DeployXML(cameraXML); err != nil {
		t.Fatal(err)
	}
	if info, _ := sys.Component("camera"); info.State != Satisfied {
		t.Fatalf("vetoed camera = %v", info.State)
	}
	// Withdrawing the veto re-resolves and activates.
	remove()
	if info, _ := sys.Component("camera"); info.State != Active {
		t.Fatalf("camera after veto removal = %v", info.State)
	}
	if _, err := sys.RegisterResolver(nil); err == nil {
		t.Fatal("nil resolver accepted")
	}
}

func TestSystemSuspendResumeEnableDisable(t *testing.T) {
	sys, err := NewSystem(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if err := sys.DeployXML(cameraXML); err != nil {
		t.Fatal(err)
	}
	if err := sys.Suspend("camera"); err != nil {
		t.Fatal(err)
	}
	if info, _ := sys.Component("camera"); info.State != Suspended {
		t.Fatalf("state = %v", info.State)
	}
	if err := sys.Resume("camera"); err != nil {
		t.Fatal(err)
	}
	if err := sys.Disable("camera"); err != nil {
		t.Fatal(err)
	}
	if err := sys.Enable("camera"); err != nil {
		t.Fatal(err)
	}
	if info, _ := sys.Component("camera"); info.State != Active {
		t.Fatalf("state after cycle = %v", info.State)
	}
	if err := sys.Remove("camera"); err != nil {
		t.Fatal(err)
	}
	if len(sys.Components()) != 0 {
		t.Fatal("components left after Remove")
	}
	if len(sys.Events()) == 0 {
		t.Fatal("no events logged")
	}
}

func TestSystemGlobalViewAndLoadMode(t *testing.T) {
	sys, err := NewSystem(Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if err := sys.DeployXML(cameraXML); err != nil {
		t.Fatal(err)
	}
	view := sys.GlobalView()
	if len(view.Admitted) != 1 || view.Admitted[0].CPUUsage != 0.1 {
		t.Fatalf("view = %+v", view)
	}
	sys.SetLoadMode(StressLoad)
	if sys.Kernel().Mode() != rtos.StressLoad {
		t.Fatal("mode not switched")
	}
	if err := sys.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	task, _ := sys.Kernel().Task("camera")
	if mean := task.Stats().Latency.Average; mean > -15000 {
		t.Fatalf("stress mean = %v", mean)
	}
}

func TestSystemListener(t *testing.T) {
	sys, err := NewSystem(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	var events []Event
	remove := sys.AddListener(func(ev Event) { events = append(events, ev) })
	defer remove()
	if err := sys.DeployXML(cameraXML); err != nil {
		t.Fatal(err)
	}
	if len(events) < 3 {
		t.Fatalf("events = %v", events)
	}
	if events[len(events)-1].To != Active {
		t.Fatalf("last = %v", events[len(events)-1])
	}
}

func TestSystemCloseIdempotent(t *testing.T) {
	sys, err := NewSystem(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.DeployXML(cameraXML); err != nil {
		t.Fatal(err)
	}
	sys.Close()
	sys.Close()
	if _, ok := sys.Kernel().Task("camera"); ok {
		t.Fatal("task survived Close")
	}
}

func TestDescriptorReexportsUsable(t *testing.T) {
	// The facade accepts any descriptor the descriptor package validates.
	if _, err := descriptor.Parse(cameraXML); err != nil {
		t.Fatal(err)
	}
}
